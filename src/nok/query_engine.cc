#include "nok/query_engine.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "nok/logical_matcher.h"
#include "nok/xpath_parser.h"

namespace nok {

namespace {

/// True iff `outer` has a related member of the sorted `inners` set
/// (Dewey containment; equivalent to the interval condition and always
/// available, so arc predicates use it in both join modes).
bool AnyRelated(const NodeMatch& outer, const std::vector<NodeMatch>& inners,
                Axis axis) {
  if (inners.empty()) return false;
  if (axis == Axis::kDescendant) {
    if (outer.virtual_root) return true;
    auto it = std::upper_bound(inners.begin(), inners.end(), outer,
                               DocOrderLess);
    return it != inners.end() &&
           IsRelated(outer, *it, Axis::kDescendant, JoinMode::kDewey);
  }
  if (outer.virtual_root) return false;
  if (axis == Axis::kFollowing) {
    // The document-order-last inner is the canonical witness.
    return IsRelated(outer, inners.back(), Axis::kFollowing,
                     JoinMode::kDewey);
  }
  // Preceding: scan inners from the front past the outer's ancestors.
  for (const NodeMatch& inner : inners) {
    if (!DocOrderLess(inner, outer)) break;
    if (IsRelated(outer, inner, Axis::kPreceding, JoinMode::kDewey)) {
      return true;
    }
  }
  return false;
}

/// StoreCursor wrapper that additionally enforces global-arc constraints:
/// a pattern node with an outgoing arc only matches subject nodes that
/// have a qualified child-tree root in the arc's relation.  Injecting the
/// arcs into the NoK match keeps witness selection sound (Algorithm 1
/// picks per-node witnesses; a binding-level post-filter could not).
class ConstrainedCursor {
 public:
  using NodeT = StoreCursor::NodeT;

  struct ArcConstraint {
    Axis axis;
    const std::vector<NodeMatch>* qualified_roots;  // Sorted.
  };

  explicit ConstrainedCursor(StoreCursor* base) : base_(base) {}

  void AddConstraint(const PatternNode* pattern, ArcConstraint constraint) {
    constraints_[pattern].push_back(constraint);
  }

  Result<std::optional<NodeT>> FirstChild(const NodeT& node) {
    return base_->FirstChild(node);
  }
  Result<std::optional<NodeT>> FollowingSibling(const NodeT& node) {
    return base_->FollowingSibling(node);
  }

  Result<bool> Matches(const NodeT& node, const PatternNode& pattern) {
    NOK_ASSIGN_OR_RETURN(bool ok, base_->Matches(node, pattern));
    if (!ok) return false;
    auto it = constraints_.find(&pattern);
    if (it == constraints_.end()) return true;
    NodeMatch as_match;
    as_match.virtual_root = node.virtual_root;
    if (!node.virtual_root) as_match.dewey = node.dewey;
    for (const ArcConstraint& constraint : it->second) {
      if (!AnyRelated(as_match, *constraint.qualified_roots,
                      constraint.axis)) {
        return false;
      }
    }
    return true;
  }

 private:
  StoreCursor* base_;
  std::unordered_map<const PatternNode*, std::vector<ArcConstraint>>
      constraints_;
};

/// NodeT -> NodeMatch (interval endpoints only in kInterval mode).
Result<NodeMatch> NodeToMatch(DocumentStore* store,
                              const StoreCursor::NodeT& node,
                              JoinMode mode) {
  NodeMatch match;
  if (node.virtual_root) {
    match.virtual_root = true;
    return match;
  }
  match.dewey = node.dewey;
  if (mode == JoinMode::kInterval) {
    match.start = store->tree()->GlobalPos(node.pos);
    NOK_ASSIGN_OR_RETURN(match.end,
                         store->tree()->SubtreeEndGlobal(node.pos));
  }
  return match;
}

/// A standalone sub-NoK-tree with its index mapping and designations.
struct SubMatcherData {
  NokTree sub;
  std::vector<int> map;            // Sub index -> original local index.
  std::vector<bool> designated;    // Over sub indexes.
  bool collects = false;           // Any designated node inside?
};

SubMatcherData MakeSub(const NokTree& tree, int local,
                       const std::vector<bool>& designated) {
  SubMatcherData data;
  data.sub = ExtractNokSubtree(tree, local, &data.map);
  data.designated.resize(data.sub.nodes.size());
  for (size_t i = 0; i < data.map.size(); ++i) {
    data.designated[i] = designated[static_cast<size_t>(data.map[i])];
    data.collects = data.collects || data.designated[i];
  }
  return data;
}

/// Whether the tree uses sibling-order constraints anywhere (the anchored
/// evaluator bails out to whole-tree matching for those).
bool HasSiblingOrder(const NokTree& tree) {
  for (const NokNode& node : tree.nodes) {
    if (!node.sibling_order.empty()) return true;
  }
  return false;
}

}  // namespace

Result<std::vector<DeweyId>> QueryEngine::Evaluate(
    const std::string& xpath, const QueryOptions& options) {
  NOK_ASSIGN_OR_RETURN(auto pattern, ParseXPath(xpath));
  return EvaluatePattern(pattern, options);
}

Result<NodeMatch> QueryEngine::ToMatch(const StoreCursor::NodeT& node,
                                       JoinMode mode) {
  return NodeToMatch(store_, node, mode);
}

Result<std::vector<StoreCursor::NodeT>> QueryEngine::ScanCandidates(
    const PatternNode& root_pattern, TagId want) {
  std::vector<StoreCursor::NodeT> out;
  StringStore* tree = store_->tree();
  if (!root_pattern.wildcard && want == kInvalidTag) {
    return out;  // Tag absent: no matches anywhere.
  }

  // Fused path for a selective tag test: phase A enumerates hit positions
  // with NextOpenWithTag, a single tag-filtered chain scan that skips
  // pages via the per-page summaries (no child counting, so skipping is
  // sound); phase B derives Dewey IDs only for the hits.  A frequent tag
  // would gain nothing from the filter while phase B re-navigates per
  // hit, so it keeps the counter scan below, as do wildcards.
  if (!root_pattern.wildcard &&
      store_->CountTag(want) * 2 <= store_->stats().node_count) {
    std::vector<StorePos> hits;
    StorePos pos = tree->RootPos();
    NOK_ASSIGN_OR_RETURN(TagId root_tag, tree->TagAt(pos));
    if (root_tag == want) hits.push_back(pos);
    for (;;) {
      NOK_ASSIGN_OR_RETURN(auto next, tree->NextOpenWithTag(pos, want));
      if (!next.has_value()) break;
      pos = *next;
      hits.push_back(pos);
    }
    return DeweysForHits(hits);
  }

  // Single forward scan; Dewey IDs are derived from the level sequence.
  std::vector<uint32_t> child_counter(
      static_cast<size_t>(tree->max_level()) + 2, 0);
  std::vector<uint32_t> path;
  std::optional<StorePos> pos = tree->RootPos();
  while (pos.has_value()) {
    NOK_ASSIGN_OR_RETURN(int level, tree->LevelAt(*pos));
    NOK_ASSIGN_OR_RETURN(TagId tag, tree->TagAt(*pos));
    const size_t l = static_cast<size_t>(level);
    path.resize(l);
    path[l - 1] = child_counter[l]++;
    child_counter[l + 1] = 0;
    if (root_pattern.wildcard || tag == want) {
      out.push_back(StoreCursor::NodeT{
          *pos, DeweyId(std::vector<uint32_t>(path)), false});
    }
    NOK_ASSIGN_OR_RETURN(auto next, tree->NextOpen(*pos));
    pos = next;
  }
  return out;
}

Result<std::vector<StoreCursor::NodeT>> QueryEngine::DeweysForHits(
    const std::vector<StorePos>& hits) {
  std::vector<StoreCursor::NodeT> out;
  out.reserve(hits.size());
  StringStore* tree = store_->tree();

  // Interval-guided descent.  The stack holds the path from the root to
  // the node most recently visited: (child index, position, subtree-end
  // global).  For each hit (ascending), entries whose subtree ends before
  // the hit are popped, and the walk resumes from the shallowest popped
  // sibling — so each level's sibling chain is traversed at most once
  // across all hits.
  struct PathEntry {
    uint32_t component;
    StorePos pos;
    uint64_t end;
  };
  std::vector<PathEntry> stack;
  std::vector<uint32_t> components;

  for (const StorePos& hit : hits) {
    const uint64_t g = tree->GlobalPos(hit);
    std::optional<PathEntry> resume;
    while (!stack.empty() && stack.back().end < g) {
      resume = stack.back();
      stack.pop_back();
    }
    if (stack.empty()) {
      const StorePos root = tree->RootPos();
      NOK_ASSIGN_OR_RETURN(uint64_t root_end,
                           tree->SubtreeEndGlobal(root));
      stack.push_back(PathEntry{0, root, root_end});
      resume.reset();  // The root has no siblings to resume from.
    }
    while (tree->GlobalPos(stack.back().pos) != g) {
      // Step down one level to the child whose interval contains g.
      PathEntry child{0, StorePos{}, 0};
      if (resume.has_value()) {
        NOK_ASSIGN_OR_RETURN(auto sib,
                             tree->FollowingSibling(resume->pos));
        if (!sib.has_value()) {
          return Status::Corruption("scan hit outside every sibling");
        }
        child.component = resume->component + 1;
        child.pos = *sib;
        resume.reset();
      } else {
        NOK_ASSIGN_OR_RETURN(auto first,
                             tree->FirstChild(stack.back().pos));
        if (!first.has_value()) {
          return Status::Corruption("scan hit below a leaf");
        }
        child.pos = *first;
      }
      for (;;) {
        if (tree->GlobalPos(child.pos) > g) {
          return Status::Corruption("scan hit between sibling subtrees");
        }
        NOK_ASSIGN_OR_RETURN(child.end,
                             tree->SubtreeEndGlobal(child.pos));
        if (g <= child.end) break;
        NOK_ASSIGN_OR_RETURN(auto sib,
                             tree->FollowingSibling(child.pos));
        if (!sib.has_value()) {
          return Status::Corruption("scan hit outside every sibling");
        }
        child.pos = *sib;
        ++child.component;
      }
      stack.push_back(child);
    }
    components.clear();
    components.reserve(stack.size());
    for (const PathEntry& entry : stack) {
      components.push_back(entry.component);
    }
    out.push_back(StoreCursor::NodeT{
        hit, DeweyId(std::vector<uint32_t>(components)), false});
  }
  return out;
}

Result<std::vector<StoreCursor::NodeT>> QueryEngine::LocateAll(
    std::vector<DeweyId> deweys) {
  std::sort(deweys.begin(), deweys.end(),
            [](const DeweyId& a, const DeweyId& b) {
              return a.Compare(b) < 0;
            });
  deweys.erase(std::unique(deweys.begin(), deweys.end()), deweys.end());

  std::vector<StoreCursor::NodeT> out;
  out.reserve(deweys.size());
  StringStore* tree = store_->tree();

  // Navigation cache: path[i] = (component value, position) of the node
  // currently reached at depth i+1.  Consecutive sorted Dewey IDs share
  // long prefixes, so most steps resume from the cached path.
  struct PathEntry {
    uint32_t component;
    StorePos pos;
  };
  std::vector<PathEntry> cached;

  for (const DeweyId& dewey : deweys) {
    const auto& comp = dewey.components();
    if (comp.empty() || comp[0] != 0) {
      return Status::InvalidArgument("bad Dewey ID " + dewey.ToString());
    }
    // Longest usable prefix of the cached path: components equal, except
    // the last reusable level may be <= (we can walk right, not left).
    size_t keep = 0;
    while (keep < cached.size() && keep < comp.size() &&
           cached[keep].component == comp[keep]) {
      ++keep;
    }
    bool resume_sideways = false;
    if (keep < cached.size() && keep < comp.size() && keep > 0 &&
        cached[keep].component < comp[keep]) {
      resume_sideways = true;  // Continue right from cached[keep].
    }
    cached.resize(keep + (resume_sideways ? 1 : 0));

    bool missing = false;
    if (cached.empty()) {
      cached.push_back(PathEntry{0, tree->RootPos()});
    }
    for (;;) {
      PathEntry& last = cached.back();
      const size_t level = cached.size();  // 1-based depth reached.
      if (last.component < comp[level - 1]) {
        // Walk right to the desired sibling.
        NOK_ASSIGN_OR_RETURN(auto sibling,
                             tree->FollowingSibling(last.pos));
        if (!sibling.has_value()) {
          missing = true;
          break;
        }
        last.pos = *sibling;
        ++last.component;
        continue;
      }
      if (level == comp.size()) break;  // Arrived.
      // Descend.
      NOK_ASSIGN_OR_RETURN(auto child, tree->FirstChild(last.pos));
      if (!child.has_value()) {
        missing = true;
        break;
      }
      cached.push_back(PathEntry{0, *child});
    }
    if (missing) {
      return Status::Corruption("index references missing node " +
                                dewey.ToString());
    }
    out.push_back(StoreCursor::NodeT{cached.back().pos, dewey, false});
  }
  return out;
}

Result<std::vector<StoreCursor::NodeT>> QueryEngine::ResolveHits(
    const std::vector<DocumentStore::IndexedNode>& hits) {
  if (!store_->positions_fresh()) {
    std::vector<DeweyId> deweys;
    deweys.reserve(hits.size());
    for (const auto& hit : hits) deweys.push_back(hit.dewey);
    return LocateAll(std::move(deweys));
  }
  std::vector<StoreCursor::NodeT> out;
  out.reserve(hits.size());
  for (const auto& hit : hits) {
    NOK_ASSIGN_OR_RETURN(StorePos pos, store_->tree()->PosForGlobal(hit.pos));
    out.push_back(StoreCursor::NodeT{pos, hit.dewey, false});
  }
  std::sort(out.begin(), out.end(),
            [](const StoreCursor::NodeT& a, const StoreCursor::NodeT& b) {
              return a.dewey.Compare(b.dewey) < 0;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const StoreCursor::NodeT& a,
                           const StoreCursor::NodeT& b) {
                          return a.dewey == b.dewey;
                        }),
            out.end());
  return out;
}

namespace {

/// Plan-time resolved tag of a pattern node (see ResolvePatternTags).
TagId ResolvedTag(const std::vector<TagId>& tag_table,
                  const PatternNode* p) {
  const size_t id = static_cast<size_t>(p->id);
  return id < tag_table.size() ? tag_table[id] : kInvalidTag;
}

}  // namespace

Result<QueryEngine::TreePlan> QueryEngine::PlanTree(
    const NokTree& tree, const std::vector<TagId>& tag_table,
    const QueryOptions& options) {
  // Anchor scoring: the cost of anchored evaluation is roughly the number
  // of candidate matches of the anchor PLUS the matching work inside its
  // pattern subtree, approximated by the total tag occurrences below it.
  // (A root-element anchor has a count of 1 but drags the whole document
  // into the subtree match; a deep selective anchor prunes everything.)
  const size_t n = tree.nodes.size();
  std::vector<uint64_t> weight(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const PatternNode* p = tree.nodes[i].pattern;
    if (p->is_doc_root) continue;
    if (p->wildcard) {
      weight[i] = store_->stats().node_count;
    } else {
      const TagId id = ResolvedTag(tag_table, p);
      weight[i] = id != kInvalidTag ? store_->CountTag(id) : 0;
    }
  }
  std::vector<uint64_t> below(n, 0);  // Sum of weights below node i.
  for (size_t i = n; i-- > 0;) {      // Children have larger indexes.
    for (int child : tree.nodes[i].children) {
      below[i] += weight[static_cast<size_t>(child)] +
                  below[static_cast<size_t>(child)];
    }
  }

  struct ValueChoice {
    uint64_t score = std::numeric_limits<uint64_t>::max();
    std::string operand;
    int node = 0;
  };
  ValueChoice best_value;
  struct TagChoice {
    uint64_t score = std::numeric_limits<uint64_t>::max();
    TagId tag = kInvalidTag;
    int node = 0;
  };
  TagChoice best_tag;
  struct PathChoice {
    uint64_t score = std::numeric_limits<uint64_t>::max();
    std::vector<TagId> path;
    int node = 0;
  };
  PathChoice best_path;

  // Rooted tag paths are only defined for the tree anchored at the
  // document root, and the path index is only consistent while stored
  // positions are fresh (it is rebuilt, not maintained, on update).
  const bool paths_usable =
      options.use_path_index && tree.root_is_doc_root &&
      store_->positions_fresh() &&
      (options.strategy == StartStrategy::kAuto ||
       options.strategy == StartStrategy::kPathIndex);
  const std::vector<int> parents =
      paths_usable ? NokParents(tree) : std::vector<int>();

  for (size_t i = 0; i < n; ++i) {
    const PatternNode* p = tree.nodes[i].pattern;
    if (p->is_doc_root) continue;  // The virtual root carries no test.
    if (p->predicate.op == ValueOp::kEq &&
        (options.strategy == StartStrategy::kAuto ||
         options.strategy == StartStrategy::kValueIndex)) {
      NOK_ASSIGN_OR_RETURN(
          size_t count,
          store_->EstimateValueCount(Slice(p->predicate.operand),
                                     options.value_estimate_cap));
      const uint64_t score = count + below[i];
      if (score < best_value.score) {
        best_value =
            ValueChoice{score, p->predicate.operand, static_cast<int>(i)};
      }
    }
    if (!p->wildcard) {
      const uint64_t score = weight[i] + below[i];
      if (score < best_tag.score) {
        best_tag = TagChoice{score, ResolvedTag(tag_table, p),
                             static_cast<int>(i)};
      }
    }
    if (paths_usable && !p->wildcard) {
      // Rooted tag path to this node (fails on a wildcard ancestor).
      std::vector<TagId> tag_path;
      bool ok = true;
      for (int a = static_cast<int>(i); a > 0;
           a = parents[static_cast<size_t>(a)]) {
        const PatternNode* ap = tree.nodes[static_cast<size_t>(a)].pattern;
        if (ap->wildcard) {
          ok = false;
          break;
        }
        const TagId id = ResolvedTag(tag_table, ap);
        if (id == kInvalidTag) {
          tag_path.clear();  // Unknown tag: the path matches nothing.
          break;
        }
        tag_path.push_back(id);
      }
      if (ok) {
        std::reverse(tag_path.begin(), tag_path.end());
        size_t count = 0;
        if (!tag_path.empty()) {
          NOK_ASSIGN_OR_RETURN(
              count, store_->EstimatePathCount(tag_path,
                                               options.value_estimate_cap));
        }
        const uint64_t score = count + below[i];
        if (score < best_path.score) {
          best_path = PathChoice{score, std::move(tag_path),
                                 static_cast<int>(i)};
        }
      }
    }
  }

  // Paper heuristic: value index whenever a value constraint exists; else
  // tag index when selective enough; else sequential scan.
  TreePlan plan;
  plan.strategy = [&] {
    switch (options.strategy) {
      case StartStrategy::kScan:
        return StartStrategy::kScan;
      case StartStrategy::kTagIndex:
        return StartStrategy::kTagIndex;
      case StartStrategy::kValueIndex:
        if (best_value.score != std::numeric_limits<uint64_t>::max()) {
          return StartStrategy::kValueIndex;
        }
        return StartStrategy::kScan;  // No usable equality constraint.
      case StartStrategy::kPathIndex:
        if (best_path.score != std::numeric_limits<uint64_t>::max()) {
          return StartStrategy::kPathIndex;
        }
        return StartStrategy::kScan;  // No usable rooted path.
      case StartStrategy::kAuto:
        break;
    }
    if (best_value.score != std::numeric_limits<uint64_t>::max()) {
      return StartStrategy::kValueIndex;
    }
    const double cutoff = options.index_fraction *
                          static_cast<double>(store_->stats().node_count);
    if (best_path.score < best_tag.score &&
        static_cast<double>(best_path.score) <= cutoff) {
      return StartStrategy::kPathIndex;
    }
    if (best_tag.tag != kInvalidTag &&
        static_cast<double>(best_tag.score) <= cutoff) {
      return StartStrategy::kTagIndex;
    }
    return StartStrategy::kScan;
  }();

  switch (plan.strategy) {
    case StartStrategy::kScan:
      break;
    case StartStrategy::kValueIndex: {
      plan.anchor = best_value.node;
      NOK_ASSIGN_OR_RETURN(plan.anchor_hits,
                           store_->NodesWithValue(Slice(best_value.operand)));
      break;
    }
    case StartStrategy::kTagIndex: {
      plan.anchor = best_tag.node;
      if (best_tag.tag != kInvalidTag) {
        NOK_ASSIGN_OR_RETURN(plan.anchor_hits,
                             store_->NodesWithTag(best_tag.tag));
      }
      break;
    }
    case StartStrategy::kPathIndex: {
      plan.anchor = best_path.node;
      if (!best_path.path.empty()) {
        NOK_ASSIGN_OR_RETURN(plan.anchor_hits,
                             store_->NodesWithPath(best_path.path));
      }
      break;
    }
    case StartStrategy::kAuto:
      return Status::Internal("unreachable strategy");
  }
  return plan;
}

namespace {

/// Anchored evaluation of one NoK tree (Section 6.2 realized): the index
/// supplies candidate matches of the anchor node; the trunk (anchor ->
/// tree root) is verified upward via Dewey prefixes; branch subtrees hang
/// off trunk nodes and are matched one level down; the anchor's own
/// subtree is matched in full.  Every trunk edge is a child axis, so the
/// subject ancestors are exactly the Dewey prefixes -- no search needed.
class AnchoredMatcher {
 public:
  AnchoredMatcher(DocumentStore* store, ConstrainedCursor* cursor,
                  const NokTree& tree, const std::vector<bool>& designated,
                  int anchor, JoinMode join_mode)
      : store_(store),
        cursor_(cursor),
        tree_(tree),
        designated_(designated),
        join_mode_(join_mode) {
    // Trunk chain root..anchor.
    const std::vector<int> parents = NokParents(tree);
    for (int n = anchor; n >= 0; n = parents[static_cast<size_t>(n)]) {
      trunk_.push_back(n);
    }
    std::reverse(trunk_.begin(), trunk_.end());
    // Branch data per trunk node (children except the trunk successor).
    branches_.resize(trunk_.size());
    for (size_t j = 0; j + 1 < trunk_.size(); ++j) {
      for (int child : tree.nodes[static_cast<size_t>(trunk_[j])].children) {
        if (child == trunk_[j + 1]) continue;
        branches_[j].push_back(MakeSub(tree, child, designated));
      }
    }
    anchor_sub_ = MakeSub(tree, anchor, designated);
  }

  /// Matches one candidate anchor node; returns the binding when the
  /// whole tree matches around it.
  Result<std::optional<NokBinding>> MatchCandidate(
      const DocumentStore::IndexedNode& hit) {
    const bool doc_root = tree_.root_is_doc_root;
    const size_t trunk_len = trunk_.size();
    // Depth feasibility: for rooted trees the anchor's document depth is
    // fixed; for floating trees it only has a minimum.
    if (doc_root) {
      if (hit.dewey.depth() != trunk_len - 1) {
        return std::optional<NokBinding>();
      }
    } else if (hit.dewey.depth() < trunk_len) {
      return std::optional<NokBinding>();
    }

    NokBinding binding;
    binding.matches.resize(tree_.nodes.size());

    for (size_t j = 0; j < trunk_len; ++j) {
      const int local = trunk_[j];
      const PatternNode* pattern =
          tree_.nodes[static_cast<size_t>(local)].pattern;
      if (pattern->is_doc_root) {
        NodeMatch virtual_match;
        virtual_match.virtual_root = true;
        binding.matches[static_cast<size_t>(local)].push_back(
            virtual_match);
        continue;
      }
      const size_t subject_depth =
          doc_root ? j : hit.dewey.depth() - (trunk_len - 1) + j;
      auto dewey = hit.dewey.Ancestor(hit.dewey.depth() - subject_depth);
      NOK_CHECK(dewey.has_value());
      NOK_ASSIGN_OR_RETURN(StorePos pos, store_->Locate(*dewey));
      StoreCursor::NodeT node{pos, *dewey, false};

      if (j + 1 == trunk_len) {
        // The anchor: match its whole pattern subtree.
        NokMatcher<ConstrainedCursor> matcher(&anchor_sub_.sub, cursor_,
                                              anchor_sub_.designated);
        NokMatcher<ConstrainedCursor>::MatchLists lists(
            anchor_sub_.sub.nodes.size());
        NOK_ASSIGN_OR_RETURN(bool ok, matcher.Match(node, &lists));
        if (!ok) return std::optional<NokBinding>();
        NOK_RETURN_IF_ERROR(Merge(anchor_sub_, lists, &binding));
        continue;
      }

      // Inner trunk node: own constraints + branch subtrees.
      NOK_ASSIGN_OR_RETURN(bool ok, cursor_->Matches(node, *pattern));
      if (!ok) return std::optional<NokBinding>();
      if (designated_[static_cast<size_t>(local)]) {
        NOK_ASSIGN_OR_RETURN(NodeMatch match,
                             NodeToMatch(store_, node, join_mode_));
        binding.matches[static_cast<size_t>(local)].push_back(
            std::move(match));
      }
      if (!branches_[j].empty()) {
        NOK_ASSIGN_OR_RETURN(bool branch_ok,
                             MatchBranches(node, branches_[j], &binding));
        if (!branch_ok) return std::optional<NokBinding>();
      }
    }
    for (auto& list : binding.matches) SortUnique(&list);
    return std::optional<NokBinding>(std::move(binding));
  }

 private:
  /// Merges a sub-matcher's lists into the binding via the index map.
  Status Merge(const SubMatcherData& sub,
               const NokMatcher<ConstrainedCursor>::MatchLists& lists,
               NokBinding* binding) {
    for (size_t i = 0; i < lists.size(); ++i) {
      for (const StoreCursor::NodeT& node : lists[i]) {
        NOK_ASSIGN_OR_RETURN(NodeMatch match,
                             NodeToMatch(store_, node, join_mode_));
        binding->matches[static_cast<size_t>(sub.map[i])].push_back(
            std::move(match));
      }
    }
    return Status::OK();
  }

  /// One level of Algorithm 1: every branch must match some child of
  /// `parent`; branches that collect designated matches keep matching all
  /// children.
  Result<bool> MatchBranches(const StoreCursor::NodeT& parent,
                             std::vector<SubMatcherData>& branches,
                             NokBinding* binding) {
    const size_t n = branches.size();
    std::vector<char> satisfied(n, 0);
    size_t remaining = n;
    size_t collecting = 0;
    for (const SubMatcherData& b : branches) collecting += b.collects;

    NOK_ASSIGN_OR_RETURN(auto u, cursor_->FirstChild(parent));
    while (u.has_value() && (remaining > 0 || collecting > 0)) {
      for (size_t i = 0; i < n; ++i) {
        if (satisfied[i] && !branches[i].collects) continue;
        NokMatcher<ConstrainedCursor> matcher(&branches[i].sub, cursor_,
                                              branches[i].designated);
        NokMatcher<ConstrainedCursor>::MatchLists lists(
            branches[i].sub.nodes.size());
        NOK_ASSIGN_OR_RETURN(bool ok, matcher.Match(*u, &lists));
        if (!ok) continue;
        NOK_RETURN_IF_ERROR(Merge(branches[i], lists, binding));
        if (!satisfied[i]) {
          satisfied[i] = 1;
          --remaining;
        }
      }
      NOK_ASSIGN_OR_RETURN(auto next, cursor_->FollowingSibling(*u));
      u = next;
    }
    return remaining == 0;
  }

  DocumentStore* store_;
  ConstrainedCursor* cursor_;
  const NokTree& tree_;
  const std::vector<bool>& designated_;
  JoinMode join_mode_;
  std::vector<int> trunk_;
  std::vector<std::vector<SubMatcherData>> branches_;
  SubMatcherData anchor_sub_;
};

}  // namespace

Result<std::vector<DeweyId>> QueryEngine::EvaluatePattern(
    const PatternTree& pattern, const QueryOptions& options) {
  stats_ = QueryStats{};
  const NokPartition partition = PartitionPattern(pattern);
  const size_t n_trees = partition.trees.size();
  stats_.trees.resize(n_trees);

  // Resolve every pattern tag against the dictionary once; the table is
  // shared by planning and by every Matches call during matching.
  const std::vector<TagId> tag_table =
      ResolvePatternTags(pattern, *store_->tags());

  StoreCursor base_cursor(store_);
  base_cursor.set_tag_table(&tag_table);
  ConstrainedCursor cursor(&base_cursor);

  // NoK matching per tree, children before parents (arc targets always
  // have larger tree ids), with each evaluated arc injected into the
  // parent's matching as a node predicate.
  std::vector<std::vector<Binding>> bindings(n_trees);
  std::vector<std::vector<NodeMatch>> qualified_roots(n_trees);
  for (size_t t = n_trees; t-- > 0;) {
    const NokTree& tree = partition.trees[t];
    QueryStats::TreeStats& tree_stats = stats_.trees[t];
    const std::vector<bool> designated =
        ComputeDesignated(partition, static_cast<int>(t));

    NOK_ASSIGN_OR_RETURN(TreePlan plan,
                         PlanTree(tree, tag_table, options));
    tree_stats.strategy = plan.strategy;

    const bool anchored = plan.strategy != StartStrategy::kScan &&
                          plan.anchor != 0 && !HasSiblingOrder(tree);

    if (anchored) {
      // Index-anchored evaluation.
      tree_stats.candidates = plan.anchor_hits.size();
      std::sort(plan.anchor_hits.begin(), plan.anchor_hits.end(),
                [](const DocumentStore::IndexedNode& a,
                   const DocumentStore::IndexedNode& b) {
                  return a.dewey.Compare(b.dewey) < 0;
                });
      plan.anchor_hits.erase(
          std::unique(plan.anchor_hits.begin(), plan.anchor_hits.end(),
                      [](const DocumentStore::IndexedNode& a,
                         const DocumentStore::IndexedNode& b) {
                        return a.dewey == b.dewey;
                      }),
          plan.anchor_hits.end());
      AnchoredMatcher matcher(store_, &cursor, tree, designated,
                              plan.anchor, options.join_mode);
      for (const auto& hit : plan.anchor_hits) {
        NOK_ASSIGN_OR_RETURN(auto binding, matcher.MatchCandidate(hit));
        if (!binding.has_value()) continue;
        qualified_roots[t].push_back(binding->matches[0].front());
        bindings[t].push_back(std::move(*binding));
      }
    } else {
      // Whole-tree matching from root candidates.
      std::vector<StoreCursor::NodeT> candidates;
      if (tree.root_is_doc_root) {
        candidates.push_back(base_cursor.VirtualRoot());
      } else if (plan.strategy == StartStrategy::kScan) {
        NOK_ASSIGN_OR_RETURN(
            candidates,
            ScanCandidates(*tree.nodes[0].pattern,
                           ResolvedTag(tag_table, tree.nodes[0].pattern)));
      } else if (plan.anchor == 0) {
        NOK_ASSIGN_OR_RETURN(candidates, ResolveHits(plan.anchor_hits));
      } else {
        // Index hits below the root but ordering constraints force a
        // whole-tree match: map the hits up to candidate roots.
        const int depth = tree.DepthOf(plan.anchor);
        std::vector<DeweyId> roots;
        for (const auto& hit : plan.anchor_hits) {
          auto up = hit.dewey.Ancestor(static_cast<size_t>(depth - 1));
          if (up.has_value()) roots.push_back(std::move(*up));
        }
        NOK_ASSIGN_OR_RETURN(candidates, LocateAll(std::move(roots)));
      }
      tree_stats.candidates = candidates.size();

      NokMatcher<ConstrainedCursor> matcher(&tree, &cursor, designated);
      for (const StoreCursor::NodeT& start : candidates) {
        NokMatcher<ConstrainedCursor>::MatchLists lists(tree.nodes.size());
        NOK_ASSIGN_OR_RETURN(bool ok, matcher.Match(start, &lists));
        if (!ok) continue;
        Binding binding;
        binding.matches.resize(tree.nodes.size());
        for (size_t i = 0; i < lists.size(); ++i) {
          for (const StoreCursor::NodeT& node : lists[i]) {
            NOK_ASSIGN_OR_RETURN(NodeMatch match,
                                 ToMatch(node, options.join_mode));
            binding.matches[i].push_back(std::move(match));
          }
          SortUnique(&binding.matches[i]);
        }
        qualified_roots[t].push_back(binding.matches[0].front());
        bindings[t].push_back(std::move(binding));
      }
    }
    tree_stats.bindings = bindings[t].size();
    SortUnique(&qualified_roots[t]);

    // Make this tree's qualified roots a predicate on its parent arc's
    // source node.
    const GlobalArc* arc = partition.ArcInto(static_cast<int>(t));
    if (arc != nullptr) {
      const NokTree& parent_tree =
          partition.trees[static_cast<size_t>(arc->from_tree)];
      const PatternNode* source =
          parent_tree.nodes[static_cast<size_t>(arc->from_node)].pattern;
      cursor.AddConstraint(
          source, ConstrainedCursor::ArcConstraint{arc->axis,
                                                   &qualified_roots[t]});
    }
  }

  // Top-down: a binding is alive when its root is related to an alive
  // parent binding's source match (bindings' injected constraints are
  // already satisfied bottom-up).  Increasing id order visits parents
  // first.
  std::vector<std::vector<char>> alive(n_trees);
  alive[0].assign(bindings[0].size(), 1);
  for (size_t t = 1; t < n_trees; ++t) {
    const GlobalArc* arc = partition.ArcInto(static_cast<int>(t));
    NOK_CHECK(arc != nullptr);
    const size_t parent = static_cast<size_t>(arc->from_tree);
    std::vector<NodeMatch> parent_sources;
    for (size_t b = 0; b < bindings[parent].size(); ++b) {
      if (!alive[parent][b]) continue;
      const auto& sources =
          bindings[parent][b].matches[static_cast<size_t>(arc->from_node)];
      parent_sources.insert(parent_sources.end(), sources.begin(),
                            sources.end());
    }
    SortUnique(&parent_sources);
    alive[t].assign(bindings[t].size(), 0);
    for (size_t b = 0; b < bindings[t].size(); ++b) {
      const NodeMatch& root = bindings[t][b].matches[0].front();
      for (const NodeMatch& src : parent_sources) {
        if (IsRelated(src, root, arc->axis, options.join_mode)) {
          alive[t][b] = 1;
          break;
        }
      }
    }
  }

  // Collect the returning node's matches over alive bindings.
  const size_t rt = static_cast<size_t>(partition.returning_tree);
  const int rn = partition.trees[rt].returning_node;
  NOK_CHECK(rn >= 0) << "partition lost the returning node";
  std::vector<NodeMatch> results;
  for (size_t b = 0; b < bindings[rt].size(); ++b) {
    if (!alive[rt][b]) continue;
    const auto& matches = bindings[rt][b].matches[static_cast<size_t>(rn)];
    results.insert(results.end(), matches.begin(), matches.end());
  }
  SortUnique(&results);

  std::vector<DeweyId> out;
  out.reserve(results.size());
  for (NodeMatch& match : results) {
    NOK_CHECK(!match.virtual_root);
    out.push_back(std::move(match.dewey));
  }
  stats_.results = out.size();
  return out;
}

}  // namespace nok
