#include "nok/planner.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "encoding/path_synopsis.h"
#include "nok/physical_matcher.h"

namespace nok {

namespace {

constexpr uint64_t kMaxScore = std::numeric_limits<uint64_t>::max();

/// Plan-time resolved tag of a pattern node (see ResolvePatternTags).
TagId ResolvedTag(const std::vector<TagId>& tag_table,
                  const PatternNode* p) {
  const size_t id = static_cast<size_t>(p->id);
  return id < tag_table.size() ? tag_table[id] : kInvalidTag;
}

std::string DisplayName(const PatternNode* p) {
  if (p->is_doc_root) return "(doc-root)";
  if (p->wildcard) return "*";
  return p->tag;
}

/// Round a fractional cardinality to a usable row estimate: a pattern
/// node that survived the match-set passes can always match at least
/// once, so estimates never round to zero.
uint64_t RoundEstimate(double value) {
  if (value < 1.0) return 1;
  return static_cast<uint64_t>(value + 0.5);
}

/// Per-pattern-node cardinalities derived from the path synopsis.
struct SynopsisEstimates {
  SynopsisCardinalities cards;
  /// First pattern node whose match set came up empty — the schema
  /// proves the whole query returns nothing.
  const PatternNode* impossible = nullptr;
};

/// Evaluates every pattern arc against the trie of distinct rooted
/// paths.  Forward pass (ids ascend parent-before-child): thread match
/// sets of trie nodes down child/descendant arcs; order axes
/// (following/preceding) degrade to "any path with the tag".  Backward
/// pass: prune parents that cannot reach any surviving child match — an
/// empty set anywhere proves the query empty, since every pattern node
/// needs a subject-tree match and value predicates only shrink match
/// sets further.  A final pass turns the surviving path counts into the
/// independence estimates documented on SynopsisCardinalities.
SynopsisEstimates ComputeSynopsisEstimates(
    const PathSynopsis& synopsis, const NokPartition& partition,
    const std::vector<TagId>& tag_table) {
  SynopsisEstimates out;
  // Collect every pattern node by dense pre-order id (each appears in
  // exactly one NoK tree; parents always have smaller ids).
  std::vector<const PatternNode*> nodes;
  for (const NokTree& tree : partition.trees) {
    for (const NokNode& node : tree.nodes) {
      const PatternNode* p = node.pattern;
      if (static_cast<size_t>(p->id) >= nodes.size()) {
        nodes.resize(static_cast<size_t>(p->id) + 1, nullptr);
      }
      nodes[static_cast<size_t>(p->id)] = p;
    }
  }
  const size_t n = nodes.size();
  std::vector<std::vector<uint32_t>> match(n);
  for (size_t i = 0; i < n; ++i) {
    const PatternNode* p = nodes[i];
    if (p == nullptr) continue;
    std::vector<uint32_t>& set = match[i];
    if (p->is_doc_root) {
      set.push_back(PathSynopsis::kVirtualRoot);
      continue;
    }
    const TagId tag = p->wildcard ? kInvalidTag : ResolvedTag(tag_table, p);
    if (!p->wildcard && tag == kInvalidTag) {
      out.impossible = p;  // The name never occurs in the document.
      return out;
    }
    if (p->parent == nullptr) {
      // A pattern root without an explicit doc root anchors anywhere.
      synopsis.CollectDescendants(PathSynopsis::kVirtualRoot, tag,
                                  p->wildcard, &set);
    } else {
      const std::vector<uint32_t>& from =
          match[static_cast<size_t>(p->parent->id)];
      switch (p->incoming) {
        case Axis::kChild:
        case Axis::kFollowingSibling:
          // Distinct trie nodes have disjoint child sets — no dedup.
          for (const uint32_t m : from) {
            synopsis.CollectChildren(m, tag, p->wildcard, &set);
          }
          break;
        case Axis::kDescendant:
          for (const uint32_t m : from) {
            synopsis.CollectDescendants(m, tag, p->wildcard, &set);
          }
          // Nested sources produce overlapping subtrees.
          std::sort(set.begin(), set.end());
          set.erase(std::unique(set.begin(), set.end()), set.end());
          break;
        case Axis::kFollowing:
        case Axis::kPreceding:
          // Document-order constraints are invisible to the trie; any
          // path with the tag qualifies while the source can match.
          if (!from.empty()) {
            synopsis.CollectDescendants(PathSynopsis::kVirtualRoot, tag,
                                        p->wildcard, &set);
          }
          break;
      }
    }
    if (set.empty()) {
      out.impossible = p;
      return out;
    }
  }
  // Backward pruning pass (children first: their ids are larger).
  for (size_t i = n; i-- > 0;) {
    const PatternNode* p = nodes[i];
    if (p == nullptr || p->parent == nullptr) continue;
    const bool structural = p->incoming == Axis::kChild ||
                            p->incoming == Axis::kFollowingSibling ||
                            p->incoming == Axis::kDescendant;
    if (!structural) continue;  // Order axes do not constrain the parent.
    const std::vector<uint32_t>& set = match[i];
    const size_t q = static_cast<size_t>(p->parent->id);
    std::vector<uint32_t>& parent_set = match[q];
    std::vector<uint32_t> kept;
    kept.reserve(parent_set.size());
    for (const uint32_t m : parent_set) {
      bool reachable = false;
      for (const uint32_t c : set) {
        if (p->incoming == Axis::kDescendant
                ? synopsis.IsDescendantOf(m, c)
                : synopsis.ParentOf(c) == m) {
          reachable = true;
          break;
        }
      }
      if (reachable) kept.push_back(m);
    }
    parent_set = std::move(kept);
    if (parent_set.empty()) {
      out.impossible = p->parent;
      return out;
    }
  }
  // Independence estimates over the pruned path counts.  kids[] records
  // structural pattern children (in-tree children AND cross-tree arcs:
  // child trees are always scheduled first, so their constraints are in
  // force whenever the parent's matching runs).
  SynopsisCardinalities& cards = out.cards;
  cards.total.assign(n, 0.0);
  cards.expected.assign(n, 0.0);
  cards.kids.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    const PatternNode* p = nodes[i];
    if (p == nullptr) continue;
    cards.total[i] = static_cast<double>(synopsis.TotalCount(match[i]));
    if (p->parent == nullptr) continue;
    if (p->incoming == Axis::kFollowing || p->incoming == Axis::kPreceding) {
      continue;  // Order axes carry no witness-fraction factor.
    }
    cards.kids[static_cast<size_t>(p->parent->id)].push_back(
        static_cast<int>(i));
  }
  for (size_t i = n; i-- > 0;) {  // Children first.
    const PatternNode* p = nodes[i];
    if (p == nullptr) continue;
    double expect = cards.total[i];
    for (const int c : cards.kids[i]) {
      expect *= std::min(
          1.0, cards.expected[static_cast<size_t>(c)] / cards.total[i]);
    }
    cards.expected[i] = expect;
  }
  return out;
}

/// Mirrors the executor's anchored-evaluation condition: sibling-order
/// constraints force whole-tree matching regardless of the anchor.
bool TreeHasSiblingOrder(const NokTree& tree) {
  for (const NokNode& node : tree.nodes) {
    if (!node.sibling_order.empty()) return true;
  }
  return false;
}

/// Expected bindings of an anchored tree: the anchor's subtree estimate
/// scaled by every off-trunk witness fraction on the root..anchor chain
/// (the anchored matcher verifies the trunk plus each trunk node's other
/// constraints, so qualifying anchors are the anchors whose ancestors
/// all find their witnesses).
double AnchoredBindings(const SynopsisCardinalities& cards,
                        const NokTree& tree, int anchor) {
  const PatternNode* root = tree.nodes[0].pattern;
  const PatternNode* prev = tree.nodes[static_cast<size_t>(anchor)].pattern;
  double est = cards.expected[static_cast<size_t>(prev->id)];
  for (const PatternNode* anc = prev->parent; anc != nullptr;
       anc = anc->parent) {
    const size_t a = static_cast<size_t>(anc->id);
    for (const int c : cards.kids[a]) {
      if (c == prev->id) continue;  // The trunk child itself.
      est *= std::min(
          1.0, cards.expected[static_cast<size_t>(c)] / cards.total[a]);
    }
    if (anc == root) break;  // The trunk ends at the tree root.
    prev = anc;
  }
  return est;
}

}  // namespace

const char* StrategyName(StartStrategy strategy) {
  switch (strategy) {
    case StartStrategy::kAuto:
      return "auto";
    case StartStrategy::kScan:
      return "scan";
    case StartStrategy::kTagIndex:
      return "tag-index";
    case StartStrategy::kValueIndex:
      return "value-index";
    case StartStrategy::kPathIndex:
      return "path-index";
  }
  return "?";
}

Result<AccessPath> Planner::PlanTree(
    const NokTree& tree, const std::vector<TagId>& tag_table,
    const QueryOptions& options, const SynopsisCardinalities* cards) {
  // Anchor scoring: the cost of anchored evaluation is roughly the number
  // of candidate matches of the anchor PLUS the matching work inside its
  // pattern subtree, approximated by the total tag occurrences below it.
  // (A root-element anchor has a count of 1 but drags the whole document
  // into the subtree match; a deep selective anchor prunes everything.)
  // With the path synopsis the subtree work uses refined per-pattern-node
  // cardinalities instead of flat tag counts; the probe costs themselves
  // stay flat (an index probe fetches every occurrence of its operand no
  // matter how rare the composition is).
  const size_t n = tree.nodes.size();
  std::vector<uint64_t> weight(n, 0);
  std::vector<uint64_t> workload(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const PatternNode* p = tree.nodes[i].pattern;
    if (p->is_doc_root) continue;
    if (p->wildcard) {
      weight[i] = store_->stats().node_count;
    } else {
      const TagId id = ResolvedTag(tag_table, p);
      weight[i] = id != kInvalidTag ? store_->CountTag(id) : 0;
    }
    workload[i] =
        cards != nullptr
            ? RoundEstimate(cards->expected[static_cast<size_t>(p->id)])
            : weight[i];
  }
  std::vector<uint64_t> below(n, 0);  // Matching work below node i.
  for (size_t i = n; i-- > 0;) {      // Children have larger indexes.
    for (int child : tree.nodes[i].children) {
      below[i] += workload[static_cast<size_t>(child)] +
                  below[static_cast<size_t>(child)];
    }
  }

  struct ValueChoice {
    uint64_t score = kMaxScore;
    uint64_t count = 0;
    std::string operand;
    int node = 0;
  };
  ValueChoice best_value;
  struct TagChoice {
    uint64_t score = kMaxScore;
    TagId tag = kInvalidTag;
    int node = 0;
  };
  TagChoice best_tag;
  struct PathChoice {
    uint64_t score = kMaxScore;
    uint64_t count = 0;
    std::vector<TagId> path;
    int node = 0;
  };
  PathChoice best_path;

  // Rooted tag paths are only defined for the tree anchored at the
  // document root, and the path index is only consistent while stored
  // positions are fresh (it is rebuilt, not maintained, on update).
  const bool paths_usable =
      options.use_path_index && tree.root_is_doc_root &&
      store_->positions_fresh() &&
      (options.strategy == StartStrategy::kAuto ||
       options.strategy == StartStrategy::kPathIndex);
  const std::vector<int> parents =
      paths_usable ? NokParents(tree) : std::vector<int>();

  for (size_t i = 0; i < n; ++i) {
    const PatternNode* p = tree.nodes[i].pattern;
    if (p->is_doc_root) continue;  // The virtual root carries no test.
    if (p->predicate.op == ValueOp::kEq &&
        (options.strategy == StartStrategy::kAuto ||
         options.strategy == StartStrategy::kValueIndex)) {
      NOK_ASSIGN_OR_RETURN(
          size_t count,
          store_->EstimateValueCount(Slice(p->predicate.operand),
                                     options.value_estimate_cap));
      const uint64_t score = count + below[i];
      if (score < best_value.score) {
        best_value = ValueChoice{score, count, p->predicate.operand,
                                 static_cast<int>(i)};
      }
    }
    if (!p->wildcard) {
      const uint64_t score = weight[i] + below[i];
      if (score < best_tag.score) {
        best_tag = TagChoice{score, ResolvedTag(tag_table, p),
                             static_cast<int>(i)};
      }
    }
    if (paths_usable && !p->wildcard) {
      // Rooted tag path to this node (fails on a wildcard ancestor).
      std::vector<TagId> tag_path;
      bool ok = true;
      for (int a = static_cast<int>(i); a > 0;
           a = parents[static_cast<size_t>(a)]) {
        const PatternNode* ap = tree.nodes[static_cast<size_t>(a)].pattern;
        if (ap->wildcard) {
          ok = false;
          break;
        }
        const TagId id = ResolvedTag(tag_table, ap);
        if (id == kInvalidTag) {
          tag_path.clear();  // Unknown tag: the path matches nothing.
          break;
        }
        tag_path.push_back(id);
      }
      if (ok) {
        std::reverse(tag_path.begin(), tag_path.end());
        size_t count = 0;
        if (!tag_path.empty()) {
          NOK_ASSIGN_OR_RETURN(
              count, store_->EstimatePathCount(tag_path,
                                               options.value_estimate_cap));
        }
        const uint64_t score = count + below[i];
        if (score < best_path.score) {
          best_path = PathChoice{score, count, std::move(tag_path),
                                 static_cast<int>(i)};
        }
      }
    }
  }

  // Paper heuristic: value index whenever a value constraint exists; else
  // tag index when selective enough; else sequential scan.  Forced
  // strategies that cannot apply to this tree (no equality constraint, no
  // usable rooted path, no named node to anchor a tag probe on) degrade
  // to a scan rather than silently returning nothing.
  AccessPath access;
  access.strategy = [&] {
    switch (options.strategy) {
      case StartStrategy::kScan:
        return StartStrategy::kScan;
      case StartStrategy::kTagIndex:
        if (best_tag.score != kMaxScore) {
          return StartStrategy::kTagIndex;
        }
        return StartStrategy::kScan;  // All-wildcard tree: nothing to probe.
      case StartStrategy::kValueIndex:
        if (best_value.score != kMaxScore) {
          return StartStrategy::kValueIndex;
        }
        return StartStrategy::kScan;  // No usable equality constraint.
      case StartStrategy::kPathIndex:
        if (best_path.score != kMaxScore) {
          return StartStrategy::kPathIndex;
        }
        return StartStrategy::kScan;  // No usable rooted path.
      case StartStrategy::kAuto:
        break;
    }
    if (best_value.score != kMaxScore) {
      return StartStrategy::kValueIndex;
    }
    const double cutoff = options.index_fraction *
                          static_cast<double>(store_->stats().node_count);
    if (best_path.score < best_tag.score &&
        static_cast<double>(best_path.score) <= cutoff) {
      return StartStrategy::kPathIndex;
    }
    if (best_tag.tag != kInvalidTag &&
        static_cast<double>(best_tag.score) <= cutoff) {
      return StartStrategy::kTagIndex;
    }
    return StartStrategy::kScan;
  }();

  switch (access.strategy) {
    case StartStrategy::kScan: {
      const PatternNode* root = tree.nodes[0].pattern;
      if (root->is_doc_root) {
        access.cardinality.candidates = 1;
      } else if (root->wildcard) {
        access.cardinality.candidates = store_->stats().node_count;
      } else {
        const TagId id = ResolvedTag(tag_table, root);
        access.tag = id;
        access.cardinality.candidates =
            id != kInvalidTag ? store_->CountTag(id) : 0;
      }
      access.display = "root=" + DisplayName(root);
      break;
    }
    case StartStrategy::kValueIndex: {
      access.anchor = best_value.node;
      access.value_operand = best_value.operand;
      access.cardinality.candidates = best_value.count;
      access.display = "value=\"" + best_value.operand + "\"";
      break;
    }
    case StartStrategy::kTagIndex: {
      access.anchor = best_tag.node;
      access.tag = best_tag.tag;
      access.cardinality.candidates =
          best_tag.tag != kInvalidTag ? store_->CountTag(best_tag.tag) : 0;
      access.display =
          "tag=" +
          DisplayName(
              tree.nodes[static_cast<size_t>(best_tag.node)].pattern);
      break;
    }
    case StartStrategy::kPathIndex: {
      access.anchor = best_path.node;
      access.tag_path = best_path.path;
      access.cardinality.candidates = best_path.count;
      // Render the rooted path from the pattern chain root..anchor.
      const std::vector<int> chain_parents = NokParents(tree);
      std::vector<int> chain;
      for (int a = best_path.node; a > 0;
           a = chain_parents[static_cast<size_t>(a)]) {
        chain.push_back(a);
      }
      access.display = "path=";
      for (size_t j = chain.size(); j-- > 0;) {
        access.display +=
            "/" +
            DisplayName(
                tree.nodes[static_cast<size_t>(chain[j])].pattern);
      }
      break;
    }
    case StartStrategy::kAuto:
      return Status::Internal("unreachable strategy");
  }
  if (cards != nullptr) {
    access.cardinality.from_synopsis = true;
    // Estimate what the tree's NokMatch emits.  Anchored evaluation
    // binds per qualifying anchor hit (never more than the probe
    // produced); whole-tree evaluation binds per qualifying root.
    const bool anchored = access.strategy != StartStrategy::kScan &&
                          access.anchor != 0 && !TreeHasSiblingOrder(tree);
    double est;
    if (anchored) {
      est = std::min(AnchoredBindings(*cards, tree, access.anchor),
                     static_cast<double>(access.cardinality.candidates));
    } else {
      const PatternNode* root = tree.nodes[0].pattern;
      est = cards->expected[static_cast<size_t>(root->id)];
    }
    access.cardinality.matches = RoundEstimate(est);
  } else {
    access.cardinality.matches = access.cardinality.candidates;
  }
  return access;
}

std::vector<int> FixedSchedule(size_t n_trees) {
  std::vector<int> order;
  order.reserve(n_trees);
  for (size_t t = n_trees; t-- > 0;) {
    order.push_back(static_cast<int>(t));
  }
  return order;
}

std::vector<int> SelectivitySchedule(
    const NokPartition& partition,
    const std::vector<TreeAccessPlan>& trees) {
  // Greedy most-selective-ready-first.  "Ready" = every child tree (arc
  // target) already scheduled, so arc constraints are always installed
  // before the parent's matching runs — the same invariant the fixed
  // reverse-id order provides.
  const size_t n = partition.trees.size();
  std::vector<char> done(n, 0);
  std::vector<int> order;
  order.reserve(n);
  while (order.size() < n) {
    int best = -1;
    for (size_t t = 0; t < n; ++t) {
      if (done[t]) continue;
      bool ready = true;
      for (const GlobalArc* arc : partition.ArcsFrom(static_cast<int>(t))) {
        if (!done[static_cast<size_t>(arc->to_tree)]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (best < 0 ||
          trees[t].access.cardinality.matches <
              trees[static_cast<size_t>(best)].access.cardinality.matches ||
          (trees[t].access.cardinality.matches ==
               trees[static_cast<size_t>(best)].access.cardinality.matches &&
           static_cast<int>(t) > best)) {
        best = static_cast<int>(t);
      }
    }
    NOK_CHECK(best >= 0) << "partition arcs are cyclic";
    done[static_cast<size_t>(best)] = 1;
    order.push_back(best);
  }
  return order;
}

Result<QueryPlan> Planner::Plan(const NokPartition& partition,
                                const std::vector<TagId>& tag_table,
                                const QueryOptions& options) {
  QueryPlan plan;
  plan.cost_based = options.cost_based_join_order;
  plan.nav_mode = store_->nav_mode();
  const PathSynopsis* synopsis =
      options.use_synopsis ? store_->path_synopsis() : nullptr;
  plan.synopsis_used = synopsis != nullptr;
  SynopsisEstimates syn;
  if (synopsis != nullptr) {
    syn = ComputeSynopsisEstimates(*synopsis, partition, tag_table);
    if (syn.impossible != nullptr) {
      // Schema-impossible path: skip the estimate probes entirely and
      // hand the executor a plan it answers without any I/O.
      plan.empty_result = true;
      plan.empty_reason = "pattern node " + DisplayName(syn.impossible) +
                          " matches no rooted path";
      plan.trees.resize(partition.trees.size());
      for (size_t t = 0; t < partition.trees.size(); ++t) {
        plan.trees[t].tree = static_cast<int>(t);
        AccessPath& access = plan.trees[t].access;
        access.strategy = StartStrategy::kScan;
        access.cardinality.from_synopsis = true;
        access.display = "(schema-impossible)";
      }
      return plan;  // The schedule stays empty: nothing to evaluate.
    }
  }
  plan.trees.resize(partition.trees.size());
  for (size_t t = 0; t < partition.trees.size(); ++t) {
    plan.trees[t].tree = static_cast<int>(t);
    NOK_ASSIGN_OR_RETURN(
        plan.trees[t].access,
        PlanTree(partition.trees[t], tag_table, options,
                 synopsis != nullptr ? &syn.cards : nullptr));
  }
  plan.schedule = plan.cost_based
                      ? SelectivitySchedule(partition, plan.trees)
                      : FixedSchedule(partition.trees.size());
  return plan;
}

std::string QueryPlan::ToString(const NokPartition& partition) const {
  std::string out = "plan: ";
  out += cost_based ? "cost-based join order" : "fixed join order";
  out += ", nav=";
  out += NavModeName(nav_mode);
  if (synopsis_used) {
    out += ", synopsis=on";
  }
  out += "\n  schedule:";
  for (int t : schedule) {
    out += " " + std::to_string(t);
  }
  out += "\n";
  if (empty_result) {
    out += "  empty-result: " + empty_reason + "\n";
  }
  for (const TreeAccessPlan& tree : trees) {
    out += "  tree " + std::to_string(tree.tree) + ": ";
    out += StrategyName(tree.access.strategy);
    out += " " + tree.access.display;
    if (tree.access.anchor != 0) {
      out += " anchor=node" + std::to_string(tree.access.anchor);
    }
    out += " est=" + std::to_string(tree.access.cardinality.matches);
    if (tree.access.cardinality.from_synopsis &&
        tree.access.cardinality.matches != tree.access.cardinality.candidates) {
      out += " cand=" + std::to_string(tree.access.cardinality.candidates);
    }
    out += "\n";
  }
  for (const GlobalArc& arc : partition.arcs) {
    out += "  arc: tree " + std::to_string(arc.from_tree) + " node " +
           std::to_string(arc.from_node) + " -" +
           std::string(AxisName(arc.axis)) + "-> tree " +
           std::to_string(arc.to_tree) + "\n";
  }
  return out;
}

}  // namespace nok
