#include "nok/planner.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "nok/physical_matcher.h"

namespace nok {

namespace {

constexpr uint64_t kMaxScore = std::numeric_limits<uint64_t>::max();

/// Plan-time resolved tag of a pattern node (see ResolvePatternTags).
TagId ResolvedTag(const std::vector<TagId>& tag_table,
                  const PatternNode* p) {
  const size_t id = static_cast<size_t>(p->id);
  return id < tag_table.size() ? tag_table[id] : kInvalidTag;
}

std::string DisplayName(const PatternNode* p) {
  if (p->is_doc_root) return "(doc-root)";
  if (p->wildcard) return "*";
  return p->tag;
}

}  // namespace

const char* StrategyName(StartStrategy strategy) {
  switch (strategy) {
    case StartStrategy::kAuto:
      return "auto";
    case StartStrategy::kScan:
      return "scan";
    case StartStrategy::kTagIndex:
      return "tag-index";
    case StartStrategy::kValueIndex:
      return "value-index";
    case StartStrategy::kPathIndex:
      return "path-index";
  }
  return "?";
}

Result<AccessPath> Planner::PlanTree(const NokTree& tree,
                                     const std::vector<TagId>& tag_table,
                                     const QueryOptions& options) {
  // Anchor scoring: the cost of anchored evaluation is roughly the number
  // of candidate matches of the anchor PLUS the matching work inside its
  // pattern subtree, approximated by the total tag occurrences below it.
  // (A root-element anchor has a count of 1 but drags the whole document
  // into the subtree match; a deep selective anchor prunes everything.)
  const size_t n = tree.nodes.size();
  std::vector<uint64_t> weight(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const PatternNode* p = tree.nodes[i].pattern;
    if (p->is_doc_root) continue;
    if (p->wildcard) {
      weight[i] = store_->stats().node_count;
    } else {
      const TagId id = ResolvedTag(tag_table, p);
      weight[i] = id != kInvalidTag ? store_->CountTag(id) : 0;
    }
  }
  std::vector<uint64_t> below(n, 0);  // Sum of weights below node i.
  for (size_t i = n; i-- > 0;) {      // Children have larger indexes.
    for (int child : tree.nodes[i].children) {
      below[i] += weight[static_cast<size_t>(child)] +
                  below[static_cast<size_t>(child)];
    }
  }

  struct ValueChoice {
    uint64_t score = kMaxScore;
    uint64_t count = 0;
    std::string operand;
    int node = 0;
  };
  ValueChoice best_value;
  struct TagChoice {
    uint64_t score = kMaxScore;
    TagId tag = kInvalidTag;
    int node = 0;
  };
  TagChoice best_tag;
  struct PathChoice {
    uint64_t score = kMaxScore;
    uint64_t count = 0;
    std::vector<TagId> path;
    int node = 0;
  };
  PathChoice best_path;

  // Rooted tag paths are only defined for the tree anchored at the
  // document root, and the path index is only consistent while stored
  // positions are fresh (it is rebuilt, not maintained, on update).
  const bool paths_usable =
      options.use_path_index && tree.root_is_doc_root &&
      store_->positions_fresh() &&
      (options.strategy == StartStrategy::kAuto ||
       options.strategy == StartStrategy::kPathIndex);
  const std::vector<int> parents =
      paths_usable ? NokParents(tree) : std::vector<int>();

  for (size_t i = 0; i < n; ++i) {
    const PatternNode* p = tree.nodes[i].pattern;
    if (p->is_doc_root) continue;  // The virtual root carries no test.
    if (p->predicate.op == ValueOp::kEq &&
        (options.strategy == StartStrategy::kAuto ||
         options.strategy == StartStrategy::kValueIndex)) {
      NOK_ASSIGN_OR_RETURN(
          size_t count,
          store_->EstimateValueCount(Slice(p->predicate.operand),
                                     options.value_estimate_cap));
      const uint64_t score = count + below[i];
      if (score < best_value.score) {
        best_value = ValueChoice{score, count, p->predicate.operand,
                                 static_cast<int>(i)};
      }
    }
    if (!p->wildcard) {
      const uint64_t score = weight[i] + below[i];
      if (score < best_tag.score) {
        best_tag = TagChoice{score, ResolvedTag(tag_table, p),
                             static_cast<int>(i)};
      }
    }
    if (paths_usable && !p->wildcard) {
      // Rooted tag path to this node (fails on a wildcard ancestor).
      std::vector<TagId> tag_path;
      bool ok = true;
      for (int a = static_cast<int>(i); a > 0;
           a = parents[static_cast<size_t>(a)]) {
        const PatternNode* ap = tree.nodes[static_cast<size_t>(a)].pattern;
        if (ap->wildcard) {
          ok = false;
          break;
        }
        const TagId id = ResolvedTag(tag_table, ap);
        if (id == kInvalidTag) {
          tag_path.clear();  // Unknown tag: the path matches nothing.
          break;
        }
        tag_path.push_back(id);
      }
      if (ok) {
        std::reverse(tag_path.begin(), tag_path.end());
        size_t count = 0;
        if (!tag_path.empty()) {
          NOK_ASSIGN_OR_RETURN(
              count, store_->EstimatePathCount(tag_path,
                                               options.value_estimate_cap));
        }
        const uint64_t score = count + below[i];
        if (score < best_path.score) {
          best_path = PathChoice{score, count, std::move(tag_path),
                                 static_cast<int>(i)};
        }
      }
    }
  }

  // Paper heuristic: value index whenever a value constraint exists; else
  // tag index when selective enough; else sequential scan.  Forced
  // strategies that cannot apply to this tree (no equality constraint, no
  // usable rooted path, no named node to anchor a tag probe on) degrade
  // to a scan rather than silently returning nothing.
  AccessPath access;
  access.strategy = [&] {
    switch (options.strategy) {
      case StartStrategy::kScan:
        return StartStrategy::kScan;
      case StartStrategy::kTagIndex:
        if (best_tag.score != kMaxScore) {
          return StartStrategy::kTagIndex;
        }
        return StartStrategy::kScan;  // All-wildcard tree: nothing to probe.
      case StartStrategy::kValueIndex:
        if (best_value.score != kMaxScore) {
          return StartStrategy::kValueIndex;
        }
        return StartStrategy::kScan;  // No usable equality constraint.
      case StartStrategy::kPathIndex:
        if (best_path.score != kMaxScore) {
          return StartStrategy::kPathIndex;
        }
        return StartStrategy::kScan;  // No usable rooted path.
      case StartStrategy::kAuto:
        break;
    }
    if (best_value.score != kMaxScore) {
      return StartStrategy::kValueIndex;
    }
    const double cutoff = options.index_fraction *
                          static_cast<double>(store_->stats().node_count);
    if (best_path.score < best_tag.score &&
        static_cast<double>(best_path.score) <= cutoff) {
      return StartStrategy::kPathIndex;
    }
    if (best_tag.tag != kInvalidTag &&
        static_cast<double>(best_tag.score) <= cutoff) {
      return StartStrategy::kTagIndex;
    }
    return StartStrategy::kScan;
  }();

  switch (access.strategy) {
    case StartStrategy::kScan: {
      const PatternNode* root = tree.nodes[0].pattern;
      if (root->is_doc_root) {
        access.estimated_candidates = 1;
      } else if (root->wildcard) {
        access.estimated_candidates = store_->stats().node_count;
      } else {
        const TagId id = ResolvedTag(tag_table, root);
        access.tag = id;
        access.estimated_candidates =
            id != kInvalidTag ? store_->CountTag(id) : 0;
      }
      access.display = "root=" + DisplayName(root);
      break;
    }
    case StartStrategy::kValueIndex: {
      access.anchor = best_value.node;
      access.value_operand = best_value.operand;
      access.estimated_candidates = best_value.count;
      access.display = "value=\"" + best_value.operand + "\"";
      break;
    }
    case StartStrategy::kTagIndex: {
      access.anchor = best_tag.node;
      access.tag = best_tag.tag;
      access.estimated_candidates =
          best_tag.tag != kInvalidTag ? store_->CountTag(best_tag.tag) : 0;
      access.display =
          "tag=" +
          DisplayName(
              tree.nodes[static_cast<size_t>(best_tag.node)].pattern);
      break;
    }
    case StartStrategy::kPathIndex: {
      access.anchor = best_path.node;
      access.tag_path = best_path.path;
      access.estimated_candidates = best_path.count;
      // Render the rooted path from the pattern chain root..anchor.
      const std::vector<int> chain_parents = NokParents(tree);
      std::vector<int> chain;
      for (int a = best_path.node; a > 0;
           a = chain_parents[static_cast<size_t>(a)]) {
        chain.push_back(a);
      }
      access.display = "path=";
      for (size_t j = chain.size(); j-- > 0;) {
        access.display +=
            "/" +
            DisplayName(
                tree.nodes[static_cast<size_t>(chain[j])].pattern);
      }
      break;
    }
    case StartStrategy::kAuto:
      return Status::Internal("unreachable strategy");
  }
  return access;
}

std::vector<int> FixedSchedule(size_t n_trees) {
  std::vector<int> order;
  order.reserve(n_trees);
  for (size_t t = n_trees; t-- > 0;) {
    order.push_back(static_cast<int>(t));
  }
  return order;
}

std::vector<int> SelectivitySchedule(
    const NokPartition& partition,
    const std::vector<TreeAccessPlan>& trees) {
  // Greedy most-selective-ready-first.  "Ready" = every child tree (arc
  // target) already scheduled, so arc constraints are always installed
  // before the parent's matching runs — the same invariant the fixed
  // reverse-id order provides.
  const size_t n = partition.trees.size();
  std::vector<char> done(n, 0);
  std::vector<int> order;
  order.reserve(n);
  while (order.size() < n) {
    int best = -1;
    for (size_t t = 0; t < n; ++t) {
      if (done[t]) continue;
      bool ready = true;
      for (const GlobalArc* arc : partition.ArcsFrom(static_cast<int>(t))) {
        if (!done[static_cast<size_t>(arc->to_tree)]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (best < 0 ||
          trees[t].access.estimated_candidates <
              trees[static_cast<size_t>(best)].access.estimated_candidates ||
          (trees[t].access.estimated_candidates ==
               trees[static_cast<size_t>(best)].access.estimated_candidates &&
           static_cast<int>(t) > best)) {
        best = static_cast<int>(t);
      }
    }
    NOK_CHECK(best >= 0) << "partition arcs are cyclic";
    done[static_cast<size_t>(best)] = 1;
    order.push_back(best);
  }
  return order;
}

Result<QueryPlan> Planner::Plan(const NokPartition& partition,
                                const std::vector<TagId>& tag_table,
                                const QueryOptions& options) {
  QueryPlan plan;
  plan.cost_based = options.cost_based_join_order;
  plan.nav_mode = store_->nav_mode();
  plan.trees.resize(partition.trees.size());
  for (size_t t = 0; t < partition.trees.size(); ++t) {
    plan.trees[t].tree = static_cast<int>(t);
    NOK_ASSIGN_OR_RETURN(
        plan.trees[t].access,
        PlanTree(partition.trees[t], tag_table, options));
  }
  plan.schedule = plan.cost_based
                      ? SelectivitySchedule(partition, plan.trees)
                      : FixedSchedule(partition.trees.size());
  return plan;
}

std::string QueryPlan::ToString(const NokPartition& partition) const {
  std::string out = "plan: ";
  out += cost_based ? "cost-based join order" : "fixed join order";
  out += ", nav=";
  out += NavModeName(nav_mode);
  out += "\n  schedule:";
  for (int t : schedule) {
    out += " " + std::to_string(t);
  }
  out += "\n";
  for (const TreeAccessPlan& tree : trees) {
    out += "  tree " + std::to_string(tree.tree) + ": ";
    out += StrategyName(tree.access.strategy);
    out += " " + tree.access.display;
    if (tree.access.anchor != 0) {
      out += " anchor=node" + std::to_string(tree.access.anchor);
    }
    out += " est=" + std::to_string(tree.access.estimated_candidates);
    out += "\n";
  }
  for (const GlobalArc& arc : partition.arcs) {
    out += "  arc: tree " + std::to_string(arc.from_tree) + " node " +
           std::to_string(arc.from_node) + " -" +
           std::string(AxisName(arc.axis)) + "-> tree " +
           std::to_string(arc.to_tree) + "\n";
  }
  return out;
}

}  // namespace nok
