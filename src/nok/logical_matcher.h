// Logical-level NoK pattern matching: Algorithm 1 of the paper.
//
// The matcher walks a subject tree through a Cursor and matches one NoK
// pattern tree against the subtree rooted at a starting node.  The Cursor
// abstracts the subject tree:
//
//   struct Cursor {
//     using NodeT = ...;                       // copyable node handle
//     Result<std::optional<NodeT>> FirstChild(const NodeT&);
//     Result<std::optional<NodeT>> FollowingSibling(const NodeT&);
//     Result<bool> Matches(const NodeT&, const PatternNode&);  // tag+value
//   };
//
// Cursors exist for the physical string store (physical_matcher.h), for
// an in-memory DOM (the test oracle and the navigational baseline) and
// for buffered SAX windows (streaming).  Because the only subject-tree
// operations are FIRST-CHILD and FOLLOWING-SIBLING, the matcher visits
// nodes in document order — the property Proposition 1's single-pass I/O
// bound rests on.
//
// Differences from the paper's pseudocode, both sanctioned by its text:
//  * matched frontier nodes are *retained* when their pattern subtree
//    contains a node whose matches must be collected (the returning node
//    or a global-arc source), so all matches are found — the paper keeps
//    the returning node in the frontier for the same reason;
//  * when a match fails midway the partial result list is rolled back to
//    a checkpoint instead of clearing R wholesale (equivalent behaviour,
//    but correct when several starting points share one result list).

#ifndef NOKXML_NOK_LOGICAL_MATCHER_H_
#define NOKXML_NOK_LOGICAL_MATCHER_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "nok/nok_partition.h"

namespace nok {

/// Marks the local nodes whose matches must be reported: the returning
/// node, every global-arc source in this tree, and the root (joins need
/// it).
std::vector<bool> ComputeDesignated(const NokPartition& partition,
                                    int tree_index);

/// For each local node: does its pattern subtree contain a designated
/// node?  (Such frontier entries are retained after a match.)
std::vector<bool> ComputeRetained(const NokTree& tree,
                                  const std::vector<bool>& designated);

/// Matches one NoK tree against subject subtrees via a Cursor.
template <typename Cursor>
class NokMatcher {
 public:
  using NodeT = typename Cursor::NodeT;
  /// matches[i] = subject nodes matched by local pattern node i (filled
  /// only for designated nodes).
  using MatchLists = std::vector<std::vector<NodeT>>;

  NokMatcher(const NokTree* tree, Cursor* cursor,
             std::vector<bool> designated)
      : tree_(tree),
        cursor_(cursor),
        designated_(std::move(designated)),
        retained_(ComputeRetained(*tree, designated_)) {}

  /// Matches the NoK tree against the subject subtree rooted at start.
  /// Returns whether the whole pattern matched; on success *out holds the
  /// collected matches (out must arrive sized tree->nodes.size()).
  /// The starting node's own constraints are checked here.
  Result<bool> Match(const NodeT& start, MatchLists* out) {
    NOK_ASSIGN_OR_RETURN(bool root_ok,
                         cursor_->Matches(start, *tree_->nodes[0].pattern));
    if (!root_ok) return false;
    NOK_ASSIGN_OR_RETURN(bool ok, Npm(0, start, out));
    if (!ok) {
      for (auto& list : *out) list.clear();
    }
    return ok;
  }

 private:
  /// Algorithm 1 (NPM): matches pattern node pnode (already verified
  /// against snode) and recursively its frontier children against snode's
  /// children, left to right.
  Result<bool> Npm(int pnode, const NodeT& snode, MatchLists* R) {
    if (designated_[static_cast<size_t>(pnode)]) {
      (*R)[static_cast<size_t>(pnode)].push_back(snode);
    }
    const NokNode& pn = tree_->nodes[static_cast<size_t>(pnode)];
    const size_t n = pn.children.size();
    if (n == 0) return true;

    // Frontier state: a child is active when all its sibling-order
    // predecessors have matched; it leaves the frontier after its first
    // match unless retained.
    std::vector<int> indegree(n, 0);
    for (auto [a, b] : pn.sibling_order) {
      ++indegree[static_cast<size_t>(b)];
    }
    std::vector<char> active(n, 0), satisfied(n, 0);
    size_t active_retained = 0;
    auto is_retained = [&](size_t i) {
      return retained_[static_cast<size_t>(pn.children[i])];
    };
    for (size_t i = 0; i < n; ++i) {
      active[i] = indegree[i] == 0;
      if (active[i] && is_retained(i)) ++active_retained;
    }
    size_t remaining = n;

    NOK_ASSIGN_OR_RETURN(auto u, cursor_->FirstChild(snode));
    // Keep scanning while unmatched children remain, or while a retained
    // child (one whose subtree collects matches) is still active — all of
    // its matches among the siblings must be found, not just the first.
    while (u.has_value() && (remaining > 0 || active_retained > 0)) {
      // Children activated during this u are eligible only from the next
      // sibling on (following-sibling is strict).
      std::vector<size_t> newly_active;
      for (size_t i = 0; i < n; ++i) {
        if (!active[i]) continue;
        const int child = pn.children[i];
        const bool retain = retained_[static_cast<size_t>(child)];
        if (satisfied[i] && !retain) continue;
        NOK_ASSIGN_OR_RETURN(
            bool node_ok,
            cursor_->Matches(*u, *tree_->nodes[static_cast<size_t>(child)]
                                      .pattern));
        if (!node_ok) continue;
        const std::vector<size_t> checkpoint = Sizes(*R);
        NOK_ASSIGN_OR_RETURN(bool sub_ok, Npm(child, *u, R));
        if (!sub_ok) {
          Rollback(R, checkpoint);
          continue;
        }
        if (!satisfied[i]) {
          satisfied[i] = 1;
          --remaining;
          for (auto [a, b] : pn.sibling_order) {
            if (static_cast<size_t>(a) == i) {
              if (--indegree[static_cast<size_t>(b)] == 0) {
                newly_active.push_back(static_cast<size_t>(b));
              }
            }
          }
        }
        if (!retain) active[i] = 0;
      }
      for (size_t b : newly_active) {
        active[b] = 1;
        if (is_retained(b)) ++active_retained;
      }
      NOK_ASSIGN_OR_RETURN(auto next, cursor_->FollowingSibling(*u));
      u = next;
    }
    return remaining == 0;
  }

  static std::vector<size_t> Sizes(const MatchLists& R) {
    std::vector<size_t> sizes(R.size());
    for (size_t i = 0; i < R.size(); ++i) sizes[i] = R[i].size();
    return sizes;
  }

  static void Rollback(MatchLists* R, const std::vector<size_t>& sizes) {
    for (size_t i = 0; i < R->size(); ++i) {
      (*R)[i].resize(sizes[i]);
    }
  }

  const NokTree* tree_;
  Cursor* cursor_;
  std::vector<bool> designated_;
  std::vector<bool> retained_;
};

}  // namespace nok

#endif  // NOKXML_NOK_LOGICAL_MATCHER_H_
