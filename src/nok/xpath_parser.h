// Parser for the XPath subset of the paper into a PatternTree.
//
// Grammar (whitespace insignificant outside literals):
//
//   Path       := ('/' | '//') Step ( ('/' | '//') Step )*
//   Step       := AxisSpec? NameTest Predicate*
//   AxisSpec   := 'child::' | 'descendant::' | 'self::'
//               | 'following::' | 'following-sibling::'
//   NameTest   := Name | '*' | '@' Name
//   Predicate  := '[' RelPath (CmpOp Literal)? ']'
//               | '[' '.' CmpOp Literal ']'
//               | '[' Integer ']'          (positional, 1-based)
//   RelPath    := Step ( ('/' | '//') Step )*
//   CmpOp      := '=' | '!=' | '<' | '<=' | '>' | '>='
//   Literal    := '"' chars '"' | '\'' chars '\'' | Number
//
// The last step of the outer Path is the returning node.  A
// following-sibling step is attached to the *parent* of the context node
// with a sibling-order constraint, matching the layered-DAG formalism of
// the paper.  A value predicate in a RelPath lands on the last step of
// that RelPath.

#ifndef NOKXML_NOK_XPATH_PARSER_H_
#define NOKXML_NOK_XPATH_PARSER_H_

#include <string>

#include "common/result.h"
#include "nok/pattern_tree.h"

namespace nok {

/// Parses a path expression into a pattern tree.  Fails with ParseError on
/// malformed or unsupported input.
Result<PatternTree> ParseXPath(const std::string& expression);

/// Statistics over the steps of a path expression (used by the
/// bench_axis_stats reproduction of the Section 1 '/'-vs-'//' survey).
struct AxisStats {
  int child_steps = 0;
  int descendant_steps = 0;
  int following_steps = 0;
  int following_sibling_steps = 0;
  int value_predicates = 0;

  int total_structural() const {
    return child_steps + descendant_steps + following_steps +
           following_sibling_steps;
  }
};

/// Counts the axes of a parsed expression.
Result<AxisStats> CollectAxisStats(const std::string& expression);

}  // namespace nok

#endif  // NOKXML_NOK_XPATH_PARSER_H_
