#include "nok/xpath_parser.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace nok {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& input) : input_(input) {}

  Result<PatternTree> Parse() {
    PatternTree tree;
    PatternNode* context = tree.root();
    SkipWs();
    if (Peek() != '/') {
      return Error("a path expression must start with '/' or '//'");
    }
    while (true) {
      SkipWs();
      if (pos_ >= input_.size()) break;
      Axis axis = Axis::kChild;
      NOK_RETURN_IF_ERROR(ParseAxisSeparator(&axis));
      NOK_ASSIGN_OR_RETURN(context, ParseStep(context, axis));
      SkipWs();
      if (pos_ >= input_.size()) break;
      if (Peek() != '/') {
        return Error("unexpected trailing input");
      }
    }
    if (context->is_doc_root) {
      return Error("empty path expression");
    }
    tree.set_returning(context);
    tree.Renumber();
    return tree;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at offset " +
                              std::to_string(pos_) + " of \"" + input_ +
                              "\")");
  }

  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeToken(const char* token) {
    SkipWs();
    const size_t len = strlen(token);
    if (input_.compare(pos_, len, token) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  /// Parses '/' or '//' into an axis.
  Status ParseAxisSeparator(Axis* axis) {
    SkipWs();
    if (Peek() != '/') return Error("expected '/' or '//'");
    ++pos_;
    if (Peek() == '/') {
      ++pos_;
      *axis = Axis::kDescendant;
    } else {
      *axis = Axis::kChild;
    }
    return Status::OK();
  }

  /// Parses a NameTest into *name / *wildcard.
  Status ParseNameTest(std::string* name, bool* wildcard) {
    SkipWs();
    *wildcard = false;
    if (Peek() == '*') {
      ++pos_;
      *wildcard = true;
      name->clear();
      return Status::OK();
    }
    std::string prefix;
    if (Peek() == '@') {
      ++pos_;
      prefix = "@";
    }
    if (pos_ >= input_.size() ||
        !(std::isalpha(static_cast<unsigned char>(Peek())) ||
          Peek() == '_')) {
      return Error("expected a name test");
    }
    const size_t start = pos_;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    *name = prefix + input_.substr(start, pos_ - start);
    return Status::OK();
  }

  /// Parses an optional explicit axis specifier; *axis is updated when
  /// one is present.  *is_parent / *is_preceding_sibling flag the two
  /// axes handled by rewriting (Section 2 of the paper reduces every
  /// XPath axis to {self, child, descendant, following}).
  Status ParseAxisSpec(Axis* axis, bool* is_parent,
                       bool* is_preceding_sibling) {
    *is_parent = false;
    *is_preceding_sibling = false;
    if (ConsumeToken("child::")) {
      *axis = Axis::kChild;
    } else if (ConsumeToken("descendant::")) {
      *axis = Axis::kDescendant;
    } else if (ConsumeToken("following-sibling::")) {
      *axis = Axis::kFollowingSibling;
    } else if (ConsumeToken("following::")) {
      *axis = Axis::kFollowing;
    } else if (ConsumeToken("preceding::")) {
      *axis = Axis::kPreceding;
    } else if (ConsumeToken("preceding-sibling::")) {
      *is_preceding_sibling = true;
    } else if (ConsumeToken("parent::")) {
      *is_parent = true;
    }
    return Status::OK();
  }

  /// parent::name rewrite: the context's parent in the pattern tree must
  /// satisfy the name test.  Two cases (both from the Section 2 axis
  /// reduction):
  ///   * context came via a child edge — its pattern parent IS the
  ///     subject parent: unify the name test with that node and continue
  ///     from it;
  ///   * context came via a descendant edge — interpose the named node:
  ///     p//x becomes p//name/x, continuing from the new node.
  Result<PatternNode*> RewriteParentStep(PatternNode* context,
                                         const std::string& name,
                                         bool wildcard) {
    PatternNode* parent = context->parent;
    if (parent == nullptr) {
      return Error("parent:: step above the document root");
    }
    switch (context->incoming) {
      case Axis::kChild:
      case Axis::kFollowingSibling: {
        if (wildcard) return parent;
        if (parent->is_doc_root) {
          return Error("parent:: step names the document root");
        }
        if (parent->wildcard) {
          parent->wildcard = false;
          parent->tag = name;
          return parent;
        }
        if (parent->tag != name) {
          return Status::NotSupported(
              "parent:: name test contradicts the pattern parent (" +
              parent->tag + " vs " + name + "): the query is empty");
        }
        return parent;
      }
      case Axis::kDescendant: {
        // p//x  ->  p//name/x.
        auto inserted = std::make_unique<PatternNode>();
        inserted->tag = name;
        inserted->wildcard = wildcard;
        inserted->incoming = Axis::kDescendant;
        inserted->parent = parent;
        PatternNode* raw = inserted.get();
        // Move `context` under the new node.
        for (auto& child : parent->children) {
          if (child.get() == context) {
            context->incoming = Axis::kChild;
            context->parent = raw;
            raw->children.push_back(std::move(child));
            child = std::move(inserted);
            return raw;
          }
        }
        return Status::Internal("context not found under its parent");
      }
      case Axis::kFollowing:
      case Axis::kPreceding:
        return Status::NotSupported(
            "parent:: after a following::/preceding:: step is not in the "
            "supported rewrite fragment");
    }
    return Status::Internal("unreachable axis");
  }

  /// Parses a comparison operator; kNone if none present.
  ValueOp ParseCmpOp() {
    SkipWs();
    if (ConsumeToken("!=")) return ValueOp::kNe;
    if (ConsumeToken("<=")) return ValueOp::kLe;
    if (ConsumeToken(">=")) return ValueOp::kGe;
    if (ConsumeToken("=")) return ValueOp::kEq;
    if (ConsumeToken("<")) return ValueOp::kLt;
    if (ConsumeToken(">")) return ValueOp::kGt;
    return ValueOp::kNone;
  }

  /// Parses a quoted string or number literal.
  Status ParseLiteral(std::string* literal) {
    SkipWs();
    const char quote = Peek();
    if (quote == '"' || quote == '\'') {
      ++pos_;
      const size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
      if (pos_ >= input_.size()) return Error("unterminated literal");
      *literal = input_.substr(start, pos_ - start);
      ++pos_;
      return Status::OK();
    }
    // Number.
    const size_t start = pos_;
    if (Peek() == '-' || Peek() == '+') ++pos_;
    bool digits = false;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) ||
            Peek() == '.')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(Peek()));
      ++pos_;
    }
    if (!digits) return Error("expected a literal");
    *literal = input_.substr(start, pos_ - start);
    return Status::OK();
  }

  /// Creates a step node for (axis, nametest) relative to context and
  /// returns it.  A following-sibling step attaches to context's parent
  /// with an order constraint; other axes attach below context.
  Result<PatternNode*> AttachStep(PatternNode* context, Axis axis,
                                  std::string name, bool wildcard) {
    auto node = std::make_unique<PatternNode>();
    node->tag = std::move(name);
    node->wildcard = wildcard;
    PatternNode* raw = node.get();
    if (axis == Axis::kFollowingSibling) {
      PatternNode* parent = context->parent;
      if (parent == nullptr || context->is_doc_root) {
        return Error("following-sibling:: has no sibling context");
      }
      // Locate context among parent's children.
      int context_index = -1;
      for (size_t i = 0; i < parent->children.size(); ++i) {
        if (parent->children[i].get() == context) {
          context_index = static_cast<int>(i);
          break;
        }
      }
      NOK_CHECK(context_index >= 0);
      node->incoming = Axis::kChild;  // Tree edge; order adds the ⊲ arc.
      node->parent = parent;
      parent->children.push_back(std::move(node));
      parent->sibling_order.emplace_back(
          context_index, static_cast<int>(parent->children.size() - 1));
    } else {
      node->incoming = axis;
      node->parent = context;
      context->children.push_back(std::move(node));
    }
    return raw;
  }

  /// Parses one step (with optional axis spec and predicates).
  Result<PatternNode*> ParseStep(PatternNode* context, Axis axis) {
    bool is_parent = false, is_preceding_sibling = false;
    NOK_RETURN_IF_ERROR(
        ParseAxisSpec(&axis, &is_parent, &is_preceding_sibling));
    std::string name;
    bool wildcard = false;
    NOK_RETURN_IF_ERROR(ParseNameTest(&name, &wildcard));
    PatternNode* node = nullptr;
    if (is_parent) {
      NOK_ASSIGN_OR_RETURN(node, RewriteParentStep(context, name,
                                                   wildcard));
    } else if (is_preceding_sibling) {
      // Mirror of following-sibling: attach to the parent with the order
      // constraint reversed (new node strictly before the context).
      NOK_ASSIGN_OR_RETURN(node, AttachStep(context,
                                            Axis::kFollowingSibling,
                                            std::move(name), wildcard));
      PatternNode* parent = node->parent;
      NOK_CHECK(!parent->sibling_order.empty());
      auto& last = parent->sibling_order.back();
      std::swap(last.first, last.second);
    } else {
      NOK_ASSIGN_OR_RETURN(node, AttachStep(context, axis,
                                            std::move(name), wildcard));
    }
    SkipWs();
    while (Peek() == '[') {
      ++pos_;
      NOK_RETURN_IF_ERROR(ParsePredicate(node));
      SkipWs();
      if (Peek() != ']') return Error("expected ']'");
      ++pos_;
      SkipWs();
    }
    return node;
  }

  /// Parses the inside of one predicate applied to node.
  Status ParsePredicate(PatternNode* node) {
    SkipWs();
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      // Positional predicate [n]: the context node must be the n-th
      // sibling passing this step's name test.
      const size_t start = pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      SkipWs();
      if (Peek() != ']') {
        return Error("expected ']' after a positional predicate");
      }
      char* end = nullptr;
      const std::string digits = input_.substr(start, pos_ - start);
      const long n = strtol(digits.c_str(), &end, 10);
      if (end != digits.c_str() + digits.size() || n < 1 ||
          n > 1 << 20) {
        return Error("positional predicate out of range");
      }
      if (node->position > 0) {
        return Status::NotSupported(
            "multiple positional predicates on one step");
      }
      node->position = static_cast<int>(n);
      return Status::OK();
    }
    if (Peek() == '.') {
      // Either a self value test [. = lit] or a relative path [.//a].
      const size_t dot = pos_;
      ++pos_;
      SkipWs();
      if (Peek() != '/') {
        const ValueOp op = ParseCmpOp();
        if (op == ValueOp::kNone) {
          return Error("expected a comparison after '.'");
        }
        if (node->predicate.active()) {
          return Status::NotSupported(
              "multiple value predicates on one step");
        }
        node->predicate.op = op;
        return ParseLiteral(&node->predicate.operand);
      }
      pos_ = dot + 1;  // Re-parse from the '/' of './/a' or './a'.
    }
    // Relative path predicate.
    PatternNode* context = node;
    for (;;) {
      Axis axis = Axis::kChild;
      SkipWs();
      if (Peek() == '/') {
        NOK_RETURN_IF_ERROR(ParseAxisSeparator(&axis));
      }
      NOK_ASSIGN_OR_RETURN(context, ParseStep(context, axis));
      SkipWs();
      if (Peek() == '/') continue;
      break;
    }
    const ValueOp op = ParseCmpOp();
    if (op != ValueOp::kNone) {
      if (context->predicate.active()) {
        return Status::NotSupported(
            "multiple value predicates on one step");
      }
      context->predicate.op = op;
      NOK_RETURN_IF_ERROR(ParseLiteral(&context->predicate.operand));
    }
    return Status::OK();
  }

  const std::string& input_;
  size_t pos_ = 0;
};

void CountAxes(const PatternNode* node, AxisStats* stats) {
  for (const auto& child : node->children) {
    switch (child->incoming) {
      case Axis::kChild:
        ++stats->child_steps;
        break;
      case Axis::kDescendant:
        ++stats->descendant_steps;
        break;
      case Axis::kFollowing:
      case Axis::kPreceding:
        ++stats->following_steps;
        break;
      case Axis::kFollowingSibling:
        ++stats->following_sibling_steps;
        break;
    }
    if (child->predicate.active()) ++stats->value_predicates;
    CountAxes(child.get(), stats);
  }
  stats->following_sibling_steps +=
      static_cast<int>(node->sibling_order.size());
}

}  // namespace

Result<PatternTree> ParseXPath(const std::string& expression) {
  Parser parser(expression);
  return parser.Parse();
}

Result<AxisStats> CollectAxisStats(const std::string& expression) {
  NOK_ASSIGN_OR_RETURN(auto tree, ParseXPath(expression));
  AxisStats stats;
  CountAxes(tree.root(), &stats);
  return stats;
}

}  // namespace nok
