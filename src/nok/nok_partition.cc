#include "nok/nok_partition.h"

#include "common/logging.h"

namespace nok {

int NokTree::DepthOf(int node_index) const {
  // Walk upward by scanning for the parent (trees are small: pattern-size).
  int depth = 1;
  int current = node_index;
  while (current != 0) {
    bool found = false;
    for (size_t i = 0; i < nodes.size() && !found; ++i) {
      for (int child : nodes[i].children) {
        if (child == current) {
          current = static_cast<int>(i);
          ++depth;
          found = true;
          break;
        }
      }
    }
    NOK_CHECK(found) << "NoK node " << node_index << " is disconnected";
  }
  return depth;
}

std::vector<const GlobalArc*> NokPartition::ArcsFrom(int tree) const {
  std::vector<const GlobalArc*> out;
  for (const GlobalArc& arc : arcs) {
    if (arc.from_tree == tree) out.push_back(&arc);
  }
  return out;
}

const GlobalArc* NokPartition::ArcInto(int tree) const {
  for (const GlobalArc& arc : arcs) {
    if (arc.to_tree == tree) return &arc;
  }
  return nullptr;
}

namespace {

// NOTE: trees are always addressed through partition->trees[tree_id]
// because recursion can grow (and reallocate) the trees vector.

/// Recursively copies the local subtree rooted at `pattern` into tree
/// `tree_id`, returning the local node index; global children spawn new
/// trees.
int BuildNokTree(const PatternNode* pattern, int tree_id,
                 NokPartition* partition);

/// Starts a new NoK tree rooted at `pattern`; returns its id.
int SpawnTree(const PatternNode* pattern, NokPartition* partition) {
  const size_t idx = partition->trees.size();
  const int id = static_cast<int>(idx);
  partition->trees.emplace_back();
  partition->trees[idx].id = id;
  partition->trees[idx].root_is_doc_root = pattern->is_doc_root;
  BuildNokTree(pattern, id, partition);
  return id;
}

int BuildNokTree(const PatternNode* pattern, int tree_id,
                 NokPartition* partition) {
  const size_t ti = static_cast<size_t>(tree_id);
  const size_t li = partition->trees[ti].nodes.size();
  const int local = static_cast<int>(li);
  partition->trees[ti].nodes.emplace_back();
  partition->trees[ti].nodes[li].pattern = pattern;
  if (pattern->is_returning) {
    partition->trees[ti].returning_node = local;
    partition->returning_tree = tree_id;
  }

  // Map pattern-child position -> local index (or -1 for global children),
  // so sibling-order constraints can be translated.
  std::vector<int> local_of_child(pattern->children.size(), -1);
  for (size_t i = 0; i < pattern->children.size(); ++i) {
    const PatternNode* child = pattern->children[i].get();
    switch (child->incoming) {
      case Axis::kChild:
      case Axis::kFollowingSibling: {
        const int child_local = BuildNokTree(child, tree_id, partition);
        partition->trees[ti].nodes[li].children.push_back(child_local);
        local_of_child[i] = child_local;
        break;
      }
      case Axis::kDescendant:
      case Axis::kFollowing:
      case Axis::kPreceding: {
        const int sub = SpawnTree(child, partition);
        partition->arcs.push_back(
            GlobalArc{tree_id, local, sub, child->incoming});
        break;
      }
    }
  }

  // Sibling order among the local children (positions within `children`).
  NokTree& t = partition->trees[ti];
  for (auto [a, b] : pattern->sibling_order) {
    const int la = local_of_child[static_cast<size_t>(a)];
    const int lb = local_of_child[static_cast<size_t>(b)];
    if (la < 0 || lb < 0) continue;  // Order over a global child: dropped
                                     // here; the arc join enforces the
                                     // document-order side.
    // Translate local node indexes into positions in the children vector.
    int pa = -1, pb = -1;
    for (size_t i = 0; i < t.nodes[li].children.size(); ++i) {
      if (t.nodes[li].children[i] == la) pa = static_cast<int>(i);
      if (t.nodes[li].children[i] == lb) pb = static_cast<int>(i);
    }
    NOK_CHECK(pa >= 0 && pb >= 0);
    t.nodes[li].sibling_order.emplace_back(pa, pb);
  }
  return local;
}

}  // namespace

NokPartition PartitionPattern(const PatternTree& pattern) {
  NokPartition partition;
  SpawnTree(pattern.root(), &partition);
  return partition;
}

std::vector<int> NokParents(const NokTree& tree) {
  std::vector<int> parent(tree.nodes.size(), -1);
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    for (int child : tree.nodes[i].children) {
      parent[static_cast<size_t>(child)] = static_cast<int>(i);
    }
  }
  return parent;
}

namespace {

int CopySubtree(const NokTree& src, int old_index, NokTree* dst,
                std::vector<int>* mapping) {
  const int new_index = static_cast<int>(dst->nodes.size());
  dst->nodes.emplace_back();
  dst->nodes[static_cast<size_t>(new_index)].pattern =
      src.nodes[static_cast<size_t>(old_index)].pattern;
  dst->nodes[static_cast<size_t>(new_index)].sibling_order =
      src.nodes[static_cast<size_t>(old_index)].sibling_order;
  if (mapping != nullptr) mapping->push_back(old_index);
  if (src.returning_node == old_index) dst->returning_node = new_index;
  for (int child : src.nodes[static_cast<size_t>(old_index)].children) {
    const int new_child = CopySubtree(src, child, dst, mapping);
    dst->nodes[static_cast<size_t>(new_index)].children.push_back(
        new_child);
  }
  return new_index;
}

}  // namespace

NokTree ExtractNokSubtree(const NokTree& tree, int local,
                          std::vector<int>* mapping) {
  NokTree sub;
  sub.id = 0;
  CopySubtree(tree, local, &sub, mapping);
  return sub;
}

std::string NokPartition::ToString() const {
  std::string out;
  for (const NokTree& tree : trees) {
    out += "tree " + std::to_string(tree.id) +
           (tree.root_is_doc_root ? " (doc root)" : "") + ":";
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      out += " " + std::to_string(i) + "=" +
             (tree.nodes[i].pattern->is_doc_root
                  ? "(root)"
                  : (tree.nodes[i].pattern->wildcard
                         ? "*"
                         : tree.nodes[i].pattern->tag));
      if (static_cast<int>(i) == tree.returning_node) out += "(ret)";
    }
    out += "\n";
  }
  for (const GlobalArc& arc : arcs) {
    out += "arc " + std::to_string(arc.from_tree) + "." +
           std::to_string(arc.from_node) + " -" +
           std::string(AxisName(arc.axis)) + "-> tree " +
           std::to_string(arc.to_tree) + "\n";
  }
  return out;
}

}  // namespace nok
