// Bounded LRU cache of query plans.
//
// Keyed by the canonical pattern string plus every plan-affecting knob
// plus the store generation (epoch + structure version), so a cached
// plan is only replayed against the exact document state it was planned
// for — the updater bumps the structure version on every structural
// edit and on RefreshPositions, which invalidates all earlier entries
// without any explicit flush.
//
// A cache lives inside one QueryEngine (a cheap per-thread object), so
// no locking is needed; bounding it keeps long-lived engines running
// ad-hoc workloads at O(capacity) memory.

#ifndef NOKXML_NOK_PLAN_CACHE_H_
#define NOKXML_NOK_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "nok/planner.h"

namespace nok {

class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// The cached plan for `key` (moved to most-recently-used), or null.
  std::shared_ptr<const QueryPlan> Lookup(const std::string& key);

  /// Inserts (or refreshes) a plan, evicting the least recently used
  /// entry when full.
  void Insert(const std::string& key,
              std::shared_ptr<const QueryPlan> plan);

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Cache key for one (pattern, options, store state) combination.
  /// `nav_mode` is part of the key: a plan records the navigation tier
  /// it was built for, so stores opened in different modes never share
  /// entries.
  static std::string Key(const std::string& canonical_pattern,
                         const QueryOptions& options, uint64_t epoch,
                         uint64_t structure_version,
                         NavMode nav_mode = NavMode::kPaged);

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const QueryPlan>>;

  size_t capacity_;
  std::list<Entry> entries_;  ///< Most recently used at the front.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

/// Thread-safe plan cache shared by reader threads in the single-writer /
/// multi-reader mode (encoding/swmr_store.h): one mutex around a
/// PlanCache.  Cross-thread invalidation needs no broadcast — the key
/// carries the epoch and structure version of the snapshot the plan was
/// built against, so a commit simply changes every reader's keys and the
/// old generation's entries age out of the LRU.
class SharedPlanCache {
 public:
  explicit SharedPlanCache(size_t capacity = PlanCache::kDefaultCapacity)
      : cache_(capacity) {}

  std::shared_ptr<const QueryPlan> Lookup(const std::string& key)
      EXCLUDES(mu_);
  void Insert(const std::string& key,
              std::shared_ptr<const QueryPlan> plan) EXCLUDES(mu_);
  PlanCache::Stats stats() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  PlanCache cache_ GUARDED_BY(mu_);
};

}  // namespace nok

#endif  // NOKXML_NOK_PLAN_CACHE_H_
