#include "nok/plan_cache.h"

namespace nok {

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return entries_.front().second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const QueryPlan> plan) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (capacity_ == 0) return;
  if (entries_.size() >= capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.emplace_front(key, std::move(plan));
  index_[key] = entries_.begin();
  ++stats_.insertions;
}

std::string PlanCache::Key(const std::string& canonical_pattern,
                           const QueryOptions& options, uint64_t epoch,
                           uint64_t structure_version, NavMode nav_mode) {
  std::string key = canonical_pattern;
  key += "|s=";
  key += StrategyName(options.strategy);
  key += "|j=";
  key += options.join_mode == JoinMode::kDewey ? "d" : "i";
  key += "|f=" + std::to_string(options.index_fraction);
  key += "|c=" + std::to_string(options.value_estimate_cap);
  key += "|p=";
  key += options.use_path_index ? "1" : "0";
  key += "|o=";
  key += options.cost_based_join_order ? "1" : "0";
  key += "|y=";  // Planner mode: synopsis estimates on/off.
  key += options.use_synopsis ? "1" : "0";
  key += "|n=";
  key += NavModeName(nav_mode);
  key += "|e=" + std::to_string(epoch);
  key += "|v=" + std::to_string(structure_version);
  return key;
}

std::shared_ptr<const QueryPlan> SharedPlanCache::Lookup(
    const std::string& key) {
  MutexLock lock(&mu_);
  return cache_.Lookup(key);
}

void SharedPlanCache::Insert(const std::string& key,
                             std::shared_ptr<const QueryPlan> plan) {
  MutexLock lock(&mu_);
  cache_.Insert(key, std::move(plan));
}

PlanCache::Stats SharedPlanCache::stats() const {
  MutexLock lock(&mu_);
  return cache_.stats();
}

}  // namespace nok
