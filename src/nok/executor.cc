#include "nok/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "nok/bp_cursor.h"
#include "nok/logical_matcher.h"
#include "nok/physical_matcher.h"

namespace nok {

namespace {

/// True iff `outer` has a related member of the sorted `inners` set
/// (Dewey containment; equivalent to the interval condition and always
/// available, so arc predicates use it in both join modes).
bool AnyRelated(const NodeMatch& outer, const std::vector<NodeMatch>& inners,
                Axis axis) {
  if (inners.empty()) return false;
  if (axis == Axis::kDescendant) {
    if (outer.virtual_root) return true;
    auto it = std::upper_bound(inners.begin(), inners.end(), outer,
                               DocOrderLess);
    return it != inners.end() &&
           IsRelated(outer, *it, Axis::kDescendant, JoinMode::kDewey);
  }
  if (outer.virtual_root) return false;
  if (axis == Axis::kFollowing) {
    // The document-order-last inner is the canonical witness.
    return IsRelated(outer, inners.back(), Axis::kFollowing,
                     JoinMode::kDewey);
  }
  // Preceding: scan inners from the front past the outer's ancestors.
  for (const NodeMatch& inner : inners) {
    if (!DocOrderLess(inner, outer)) break;
    if (IsRelated(outer, inner, Axis::kPreceding, JoinMode::kDewey)) {
      return true;
    }
  }
  return false;
}

/// Cursor wrapper that additionally enforces global-arc constraints: a
/// pattern node with an outgoing arc only matches subject nodes that
/// have a qualified child-tree root in the arc's relation.  Injecting the
/// arcs into the NoK match keeps witness selection sound (Algorithm 1
/// picks per-node witnesses; a binding-level post-filter could not).
/// Templated over the base cursor so both navigation tiers (paged
/// StoreCursor and balanced-parentheses BpCursor) share it.
template <typename BaseCursor>
class ConstrainedCursorT {
 public:
  using NodeT = typename BaseCursor::NodeT;

  struct ArcConstraint {
    Axis axis;
    const std::vector<NodeMatch>* qualified_roots;  // Sorted.
  };

  explicit ConstrainedCursorT(BaseCursor* base) : base_(base) {}

  void AddConstraint(const PatternNode* pattern, ArcConstraint constraint) {
    constraints_[pattern].push_back(constraint);
  }

  Result<std::optional<NodeT>> FirstChild(const NodeT& node) {
    return base_->FirstChild(node);
  }
  Result<std::optional<NodeT>> FollowingSibling(const NodeT& node) {
    return base_->FollowingSibling(node);
  }

  Result<bool> Matches(const NodeT& node, const PatternNode& pattern) {
    NOK_ASSIGN_OR_RETURN(bool ok, base_->Matches(node, pattern));
    if (!ok) return false;
    auto it = constraints_.find(&pattern);
    if (it == constraints_.end()) return true;
    NodeMatch as_match;
    as_match.virtual_root = node.virtual_root;
    if (!node.virtual_root) as_match.dewey = node.dewey;
    for (const ArcConstraint& constraint : it->second) {
      if (!AnyRelated(as_match, *constraint.qualified_roots,
                      constraint.axis)) {
        return false;
      }
    }
    return true;
  }

 private:
  BaseCursor* base_;
  std::unordered_map<const PatternNode*, std::vector<ArcConstraint>>
      constraints_;
};

/// A standalone sub-NoK-tree with its index mapping and designations.
struct SubMatcherData {
  NokTree sub;
  std::vector<int> map;            // Sub index -> original local index.
  std::vector<bool> designated;    // Over sub indexes.
  bool collects = false;           // Any designated node inside?
};

SubMatcherData MakeSub(const NokTree& tree, int local,
                       const std::vector<bool>& designated) {
  SubMatcherData data;
  data.sub = ExtractNokSubtree(tree, local, &data.map);
  data.designated.resize(data.sub.nodes.size());
  for (size_t i = 0; i < data.map.size(); ++i) {
    data.designated[i] = designated[static_cast<size_t>(data.map[i])];
    data.collects = data.collects || data.designated[i];
  }
  return data;
}

/// Whether the tree uses sibling-order constraints anywhere (the anchored
/// evaluator bails out to whole-tree matching for those).
bool HasSiblingOrder(const NokTree& tree) {
  for (const NokNode& node : tree.nodes) {
    if (!node.sibling_order.empty()) return true;
  }
  return false;
}

/// Plan-time resolved tag of a pattern node (see ResolvePatternTags).
TagId ResolvedTag(const std::vector<TagId>& tag_table,
                  const PatternNode* p) {
  const size_t id = static_cast<size_t>(p->id);
  return id < tag_table.size() ? tag_table[id] : kInvalidTag;
}

/// Wall-clock + subject-tree-page accounting for one operator.
class OpTimer {
 public:
  explicit OpTimer(DocumentStore* store)
      : store_(store),
        pages_before_(store->tree()->nav_stats().pages_scanned),
        start_(std::chrono::steady_clock::now()) {}

  void Finish(OperatorStats* op) const {
    op->pages =
        store_->tree()->nav_stats().pages_scanned - pages_before_;
    op->seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  }

 private:
  DocumentStore* store_;
  uint64_t pages_before_;
  std::chrono::steady_clock::time_point start_;
};

/// One global-arc predicate whose source node lies on the anchored
/// trunk: the source's subject Dewey ID is a fixed prefix of the anchor
/// candidate's, so the arc can be checked per candidate with a sorted
/// merge before any page is fetched — the SemiJoinFilter operator.  The
/// same AnyRelated test runs again inside ConstrainedCursorT::Matches
/// during NokMatch, so pruning here never changes results, only cost.
struct TrunkArcCheck {
  size_t trunk_index = 0;  ///< Position of the source node on the trunk.
  bool source_is_doc_root = false;
  Axis axis = Axis::kDescendant;
  const std::vector<NodeMatch>* inners = nullptr;  ///< Sorted.
};

/// The trunk (root..anchor chain) arc checks for one tree; empty when no
/// outgoing arc's source sits on the trunk.
std::vector<TrunkArcCheck> TrunkArcChecks(
    const NokPartition& partition, const NokTree& tree, int tree_id,
    int anchor, size_t* trunk_len,
    const std::vector<std::vector<NodeMatch>>& qualified_roots) {
  std::vector<int> trunk;
  const std::vector<int> parents = NokParents(tree);
  for (int n = anchor; n >= 0; n = parents[static_cast<size_t>(n)]) {
    trunk.push_back(n);
  }
  std::reverse(trunk.begin(), trunk.end());
  *trunk_len = trunk.size();
  std::vector<TrunkArcCheck> checks;
  for (const GlobalArc* arc : partition.ArcsFrom(tree_id)) {
    for (size_t j = 0; j < trunk.size(); ++j) {
      if (trunk[j] != arc->from_node) continue;
      TrunkArcCheck check;
      check.trunk_index = j;
      check.source_is_doc_root =
          tree.nodes[static_cast<size_t>(trunk[j])].pattern->is_doc_root;
      check.axis = arc->axis;
      check.inners =
          &qualified_roots[static_cast<size_t>(arc->to_tree)];
      checks.push_back(check);
      break;
    }
  }
  return checks;
}

/// Keeps only anchor hits that pass depth feasibility and every trunk
/// arc check (see TrunkArcCheck; both conditions are re-verified during
/// matching, so this is a pure pre-filter).
void PrefilterAnchorHits(const NokTree& tree, size_t trunk_len,
                         const std::vector<TrunkArcCheck>& checks,
                         std::vector<DocumentStore::IndexedNode>* hits) {
  const bool doc_root = tree.root_is_doc_root;
  auto rejected = [&](const DocumentStore::IndexedNode& hit) {
    const size_t depth = hit.dewey.depth();
    if (doc_root) {
      if (depth != trunk_len - 1) return true;
    } else if (depth < trunk_len) {
      return true;
    }
    for (const TrunkArcCheck& check : checks) {
      NodeMatch as_match;
      if (check.source_is_doc_root) {
        as_match.virtual_root = true;
      } else {
        const size_t subject_depth =
            doc_root ? check.trunk_index
                     : depth - (trunk_len - 1) + check.trunk_index;
        auto dewey = hit.dewey.Ancestor(depth - subject_depth);
        NOK_CHECK(dewey.has_value());
        as_match.dewey = std::move(*dewey);
      }
      if (!AnyRelated(as_match, *check.inners, check.axis)) return true;
    }
    return false;
  };
  hits->erase(std::remove_if(hits->begin(), hits->end(), rejected),
              hits->end());
}

/// Arc checks for whole-tree evaluation: only arcs whose source is the
/// NoK root itself apply (the candidates are exactly the root's subject
/// nodes); the root of a floating tree is never the virtual doc root.
struct RootArcCheck {
  Axis axis = Axis::kDescendant;
  const std::vector<NodeMatch>* inners = nullptr;  ///< Sorted.
};

std::vector<RootArcCheck> RootArcChecks(
    const NokPartition& partition, int tree_id,
    const std::vector<std::vector<NodeMatch>>& qualified_roots) {
  std::vector<RootArcCheck> checks;
  for (const GlobalArc* arc : partition.ArcsFrom(tree_id)) {
    if (arc->from_node != 0) continue;
    checks.push_back(RootArcCheck{
        arc->axis, &qualified_roots[static_cast<size_t>(arc->to_tree)]});
  }
  return checks;
}

bool PassesRootChecks(const DeweyId& dewey,
                      const std::vector<RootArcCheck>& checks) {
  NodeMatch as_match;
  as_match.dewey = dewey;
  for (const RootArcCheck& check : checks) {
    if (!AnyRelated(as_match, *check.inners, check.axis)) return false;
  }
  return true;
}

/// Index hits for one access path (the probe operators' body; shared by
/// both navigation backends — index probes never touch tree pages).
Result<std::vector<DocumentStore::IndexedNode>> FetchHits(
    DocumentStore* store, const AccessPath& access) {
  std::vector<DocumentStore::IndexedNode> hits;
  switch (access.strategy) {
    case StartStrategy::kValueIndex:
      return store->NodesWithValue(Slice(access.value_operand));
    case StartStrategy::kTagIndex:
      if (access.tag == kInvalidTag) return hits;  // Absent tag: empty.
      return store->NodesWithTag(access.tag);
    case StartStrategy::kPathIndex:
      if (access.tag_path.empty()) return hits;  // Unknown path: empty.
      return store->NodesWithPath(access.tag_path);
    case StartStrategy::kAuto:
    case StartStrategy::kScan:
      break;
  }
  return Status::Internal("access path has no index probe");
}

// ---------------------------------------------------------------------
// Navigation backends.  A backend bundles one physical cursor with the
// executor's candidate-production primitives, all expressed against that
// cursor's node handle:
//
//   ToMatch        NodeT -> NodeMatch (interval endpoints in kInterval
//                  mode come from the backend's own numbering);
//   NodeAt         Dewey ID -> NodeT (trunk verification);
//   ScanCandidates the AnchorScan operator's body;
//   LocateAll      candidate Dewey IDs -> NodeTs;
//   ResolveHits    index hits -> NodeTs.
//
// PagedNav navigates the paged string store (BufferPool traffic, counted
// in NavStats::pages_scanned); BpNav navigates the in-memory balanced-
// parentheses index (no page access at all, counted in bp_steps).

/// Paged-string backend: the original navigation tier.
class PagedNav {
 public:
  using Cursor = StoreCursor;
  using NodeT = StoreCursor::NodeT;

  explicit PagedNav(DocumentStore* store) : store_(store), cursor_(store) {}

  Cursor* cursor() { return &cursor_; }

  /// NodeT -> NodeMatch (interval endpoints are global byte positions).
  Result<NodeMatch> ToMatch(const NodeT& node, JoinMode mode) {
    NodeMatch match;
    if (node.virtual_root) {
      match.virtual_root = true;
      return match;
    }
    match.dewey = node.dewey;
    if (mode == JoinMode::kInterval) {
      match.start = store_->tree()->GlobalPos(node.pos);
      NOK_ASSIGN_OR_RETURN(match.end,
                           store_->tree()->SubtreeEndGlobal(node.pos));
    }
    return match;
  }

  /// Physical node for one Dewey ID via the B+i index.
  Result<NodeT> NodeAt(const DeweyId& dewey) {
    NOK_ASSIGN_OR_RETURN(StorePos pos, store_->Locate(dewey));
    return NodeT{pos, dewey, false};
  }

  /// All document nodes whose tag satisfies the NoK root's name test,
  /// via a sequential scan of the string store (the "naive" strategy).
  /// `want` is the root pattern's resolved tag (kInvalidTag for a name
  /// absent from the document).  Selective tags take the fused
  /// NextOpenWithTag path: the scan consults the per-page tag summaries
  /// and Dewey IDs are derived only for the hits.
  Result<std::vector<NodeT>> ScanCandidates(const PatternNode& root_pattern,
                                            TagId want) {
    std::vector<NodeT> out;
    StringStore* tree = store_->tree();
    if (!root_pattern.wildcard && want == kInvalidTag) {
      return out;  // Tag absent: no matches anywhere.
    }

    // Fused path for a selective tag test: phase A enumerates hit
    // positions with NextOpenWithTag, a single tag-filtered chain scan
    // that skips pages via the per-page summaries (no child counting, so
    // skipping is sound); phase B derives Dewey IDs only for the hits.
    // A frequent tag would gain nothing from the filter while phase B
    // re-navigates per hit, so it keeps the counter scan below, as do
    // wildcards.
    if (!root_pattern.wildcard &&
        store_->CountTag(want) * 2 <= store_->stats().node_count) {
      std::vector<StorePos> hits;
      StorePos pos = tree->RootPos();
      NOK_ASSIGN_OR_RETURN(TagId root_tag, tree->TagAt(pos));
      if (root_tag == want) hits.push_back(pos);
      for (;;) {
        NOK_ASSIGN_OR_RETURN(auto next, tree->NextOpenWithTag(pos, want));
        if (!next.has_value()) break;
        pos = *next;
        hits.push_back(pos);
      }
      return DeweysForHits(hits);
    }

    // Single forward scan; Dewey IDs are derived from the level sequence.
    std::vector<uint32_t> child_counter(
        static_cast<size_t>(tree->max_level()) + 2, 0);
    std::vector<uint32_t> path;
    std::optional<StorePos> pos = tree->RootPos();
    while (pos.has_value()) {
      NOK_ASSIGN_OR_RETURN(int level, tree->LevelAt(*pos));
      NOK_ASSIGN_OR_RETURN(TagId tag, tree->TagAt(*pos));
      const size_t l = static_cast<size_t>(level);
      path.resize(l);
      path[l - 1] = child_counter[l]++;
      child_counter[l + 1] = 0;
      if (root_pattern.wildcard || tag == want) {
        out.push_back(NodeT{*pos, DeweyId(std::vector<uint32_t>(path)),
                            false});
      }
      NOK_ASSIGN_OR_RETURN(auto next, tree->NextOpen(*pos));
      pos = next;
    }
    return out;
  }

  /// Converts sorted candidate Dewey IDs to physical nodes, reusing the
  /// navigation path across consecutive candidates (the slow path used
  /// when stored positions are stale).
  Result<std::vector<NodeT>> LocateAll(std::vector<DeweyId> deweys) {
    std::sort(deweys.begin(), deweys.end(),
              [](const DeweyId& a, const DeweyId& b) {
                return a.Compare(b) < 0;
              });
    deweys.erase(std::unique(deweys.begin(), deweys.end()), deweys.end());

    std::vector<NodeT> out;
    out.reserve(deweys.size());
    StringStore* tree = store_->tree();

    // Navigation cache: path[i] = (component value, position) of the node
    // currently reached at depth i+1.  Consecutive sorted Dewey IDs share
    // long prefixes, so most steps resume from the cached path.
    struct PathEntry {
      uint32_t component;
      StorePos pos;
    };
    std::vector<PathEntry> cached;

    for (const DeweyId& dewey : deweys) {
      const auto& comp = dewey.components();
      if (comp.empty() || comp[0] != 0) {
        return Status::InvalidArgument("bad Dewey ID " + dewey.ToString());
      }
      // Longest usable prefix of the cached path: components equal,
      // except the last reusable level may be <= (we can walk right, not
      // left).
      size_t keep = 0;
      while (keep < cached.size() && keep < comp.size() &&
             cached[keep].component == comp[keep]) {
        ++keep;
      }
      bool resume_sideways = false;
      if (keep < cached.size() && keep < comp.size() && keep > 0 &&
          cached[keep].component < comp[keep]) {
        resume_sideways = true;  // Continue right from cached[keep].
      }
      cached.resize(keep + (resume_sideways ? 1 : 0));

      bool missing = false;
      if (cached.empty()) {
        cached.push_back(PathEntry{0, tree->RootPos()});
      }
      for (;;) {
        PathEntry& last = cached.back();
        const size_t level = cached.size();  // 1-based depth reached.
        if (last.component < comp[level - 1]) {
          // Walk right to the desired sibling.
          NOK_ASSIGN_OR_RETURN(auto sibling,
                               tree->FollowingSibling(last.pos));
          if (!sibling.has_value()) {
            missing = true;
            break;
          }
          last.pos = *sibling;
          ++last.component;
          continue;
        }
        if (level == comp.size()) break;  // Arrived.
        // Descend.
        NOK_ASSIGN_OR_RETURN(auto child, tree->FirstChild(last.pos));
        if (!child.has_value()) {
          missing = true;
          break;
        }
        cached.push_back(PathEntry{0, *child});
      }
      if (missing) {
        return Status::Corruption("index references missing node " +
                                  dewey.ToString());
      }
      out.push_back(NodeT{cached.back().pos, dewey, false});
    }
    return out;
  }

  /// Index hits -> physical nodes (positions when fresh, else LocateAll).
  Result<std::vector<NodeT>> ResolveHits(
      const std::vector<DocumentStore::IndexedNode>& hits) {
    if (!store_->positions_fresh()) {
      std::vector<DeweyId> deweys;
      deweys.reserve(hits.size());
      for (const auto& hit : hits) deweys.push_back(hit.dewey);
      return LocateAll(std::move(deweys));
    }
    std::vector<NodeT> out;
    out.reserve(hits.size());
    for (const auto& hit : hits) {
      NOK_ASSIGN_OR_RETURN(StorePos pos,
                           store_->tree()->PosForGlobal(hit.pos));
      out.push_back(NodeT{pos, hit.dewey, false});
    }
    std::sort(out.begin(), out.end(),
              [](const NodeT& a, const NodeT& b) {
                return a.dewey.Compare(b.dewey) < 0;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const NodeT& a, const NodeT& b) {
                            return a.dewey == b.dewey;
                          }),
              out.end());
    return out;
  }

 private:
  /// Dewey IDs for tag-scan hit positions (ascending): an interval-
  /// guided descent that reuses the navigation path across consecutive
  /// hits.
  Result<std::vector<NodeT>> DeweysForHits(
      const std::vector<StorePos>& hits) {
    std::vector<NodeT> out;
    out.reserve(hits.size());
    StringStore* tree = store_->tree();

    // Interval-guided descent.  The stack holds the path from the root
    // to the node most recently visited: (child index, position,
    // subtree-end global).  For each hit (ascending), entries whose
    // subtree ends before the hit are popped, and the walk resumes from
    // the shallowest popped sibling — so each level's sibling chain is
    // traversed at most once across all hits.
    struct PathEntry {
      uint32_t component;
      StorePos pos;
      uint64_t end;
    };
    std::vector<PathEntry> stack;
    std::vector<uint32_t> components;

    for (const StorePos& hit : hits) {
      const uint64_t g = tree->GlobalPos(hit);
      std::optional<PathEntry> resume;
      while (!stack.empty() && stack.back().end < g) {
        resume = stack.back();
        stack.pop_back();
      }
      if (stack.empty()) {
        const StorePos root = tree->RootPos();
        NOK_ASSIGN_OR_RETURN(uint64_t root_end,
                             tree->SubtreeEndGlobal(root));
        stack.push_back(PathEntry{0, root, root_end});
        resume.reset();  // The root has no siblings to resume from.
      }
      while (tree->GlobalPos(stack.back().pos) != g) {
        // Step down one level to the child whose interval contains g.
        PathEntry child{0, StorePos{}, 0};
        if (resume.has_value()) {
          NOK_ASSIGN_OR_RETURN(auto sib,
                               tree->FollowingSibling(resume->pos));
          if (!sib.has_value()) {
            return Status::Corruption("scan hit outside every sibling");
          }
          child.component = resume->component + 1;
          child.pos = *sib;
          resume.reset();
        } else {
          NOK_ASSIGN_OR_RETURN(auto first,
                               tree->FirstChild(stack.back().pos));
          if (!first.has_value()) {
            return Status::Corruption("scan hit below a leaf");
          }
          child.pos = *first;
        }
        for (;;) {
          if (tree->GlobalPos(child.pos) > g) {
            return Status::Corruption("scan hit between sibling subtrees");
          }
          NOK_ASSIGN_OR_RETURN(child.end,
                               tree->SubtreeEndGlobal(child.pos));
          if (g <= child.end) break;
          NOK_ASSIGN_OR_RETURN(auto sib,
                               tree->FollowingSibling(child.pos));
          if (!sib.has_value()) {
            return Status::Corruption("scan hit outside every sibling");
          }
          child.pos = *sib;
          ++child.component;
        }
        stack.push_back(child);
      }
      components.clear();
      components.reserve(stack.size());
      for (const PathEntry& entry : stack) {
        components.push_back(entry.component);
      }
      out.push_back(NodeT{hit, DeweyId(std::vector<uint32_t>(components)),
                          false});
    }
    return out;
  }

  DocumentStore* store_;
  StoreCursor cursor_;
};

/// Balanced-parentheses backend: every primitive runs on the in-memory
/// BpIndex — candidate scans over the SWAR tag array, Dewey derivation
/// and trunk verification over the bitvector — so the access path
/// touches zero subject-tree pages.  Navigation work is counted into
/// NavStats::bp_steps / bp_tag_blocks_skipped.
class BpNav {
 public:
  using Cursor = BpCursor;
  using NodeT = BpCursor::NodeT;

  BpNav(DocumentStore* store, const BpIndex* bp)
      : store_(store), bp_(bp), cursor_(store, bp) {}

  Cursor* cursor() { return &cursor_; }

  /// NodeT -> NodeMatch.  In kInterval mode the endpoints are BP bit
  /// positions: a document-order numbering with subtree containment,
  /// which is all the interval containment test needs — and both
  /// endpoints come straight from the bitvector (FindClose).
  Result<NodeMatch> ToMatch(const NodeT& node, JoinMode mode) {
    NodeMatch match;
    if (node.virtual_root) {
      match.virtual_root = true;
      return match;
    }
    match.dewey = node.dewey;
    if (mode == JoinMode::kInterval) {
      match.start = node.pos;
      match.end = bp_->FindClose(node.pos);
    }
    return match;
  }

  /// Node handle for one Dewey ID: a prefix-cached BP walk (candidates
  /// arrive sorted, so consecutive trunk ancestors share the path).
  Result<NodeT> NodeAt(const DeweyId& dewey) {
    NOK_ASSIGN_OR_RETURN(auto pos, WalkTo(dewey));
    if (!pos.has_value()) {
      return Status::Corruption("index references missing node " +
                                dewey.ToString());
    }
    return NodeT{*pos, dewey, false};
  }

  /// AnchorScan over the BP index.  Mirrors the paged heuristic: a
  /// selective tag takes the fused SWAR path (64-node blocks without the
  /// tag dismissed in 16 word compares, Dewey IDs derived only for the
  /// hits); frequent tags and wildcards take one sequential pass over
  /// the raw bits, which yields every open's Dewey ID inline.
  Result<std::vector<NodeT>> ScanCandidates(const PatternNode& root_pattern,
                                            TagId want) {
    std::vector<NodeT> out;
    if (!root_pattern.wildcard && want == kInvalidTag) {
      return out;  // Tag absent: no matches anywhere.
    }
    if (bp_->node_count() == 0) return out;
    StringStore* tree = store_->tree();

    if (!root_pattern.wildcard &&
        store_->CountTag(want) * 2 <= store_->stats().node_count) {
      std::vector<uint64_t> hits;
      uint64_t blocks_skipped = 0;
      if (bp_->TagAt(0) == want) hits.push_back(0);
      uint64_t pos = 0;
      for (;;) {
        const auto next = bp_->NextOpenWithTag(pos, want, &blocks_skipped);
        if (!next.has_value()) break;
        pos = *next;
        hits.push_back(pos);
      }
      tree->BumpBpSteps(hits.size());
      tree->BumpBpTagBlocksSkipped(blocks_skipped);
      return DeweysForHits(hits);
    }

    // One pass over the raw bits: the running depth and per-level child
    // counters give every open's Dewey ID with no rank/select calls.
    std::vector<uint32_t> child_counter(
        static_cast<size_t>(tree->max_level()) + 2, 0);
    std::vector<uint32_t> path;
    uint64_t rank = 0;
    size_t level = 0;
    const uint64_t n_bits = bp_->bit_count();
    for (uint64_t pos = 0; pos < n_bits; ++pos) {
      if (!bp_->IsOpen(pos)) {
        --level;
        continue;
      }
      ++level;
      path.resize(level);
      path[level - 1] = child_counter[level]++;
      child_counter[level + 1] = 0;
      const TagId tag = bp_->TagAtRank(rank++);
      if (root_pattern.wildcard || tag == want) {
        out.push_back(NodeT{pos, DeweyId(std::vector<uint32_t>(path)),
                            false});
      }
    }
    tree->BumpBpSteps(bp_->node_count());
    return out;
  }

  /// Candidate Dewey IDs -> BP nodes via the prefix-cached walk.
  Result<std::vector<NodeT>> LocateAll(std::vector<DeweyId> deweys) {
    std::sort(deweys.begin(), deweys.end(),
              [](const DeweyId& a, const DeweyId& b) {
                return a.Compare(b) < 0;
              });
    deweys.erase(std::unique(deweys.begin(), deweys.end()), deweys.end());
    std::vector<NodeT> out;
    out.reserve(deweys.size());
    for (DeweyId& dewey : deweys) {
      NOK_ASSIGN_OR_RETURN(auto pos, WalkTo(dewey));
      if (!pos.has_value()) {
        return Status::Corruption("index references missing node " +
                                  dewey.ToString());
      }
      out.push_back(NodeT{*pos, std::move(dewey), false});
    }
    return out;
  }

  /// Index hits -> BP nodes.  Hit positions are byte offsets into the
  /// paged string, meaningless to the BP numbering, so resolution always
  /// goes through the Dewey IDs (sorted + deduplicated by LocateAll) —
  /// still zero page access.
  Result<std::vector<NodeT>> ResolveHits(
      const std::vector<DocumentStore::IndexedNode>& hits) {
    std::vector<DeweyId> deweys;
    deweys.reserve(hits.size());
    for (const auto& hit : hits) deweys.push_back(hit.dewey);
    return LocateAll(std::move(deweys));
  }

 private:
  struct PathEntry {
    uint32_t component;
    uint64_t pos;
  };

  /// Open position for one Dewey ID, or nullopt when the document has no
  /// such node.  The cached root..current path persists across calls;
  /// the reuse logic matches PagedNav::LocateAll (equal prefix, resume
  /// rightward at the first divergence when possible).
  Result<std::optional<uint64_t>> WalkTo(const DeweyId& dewey) {
    const auto& comp = dewey.components();
    if (comp.empty() || comp[0] != 0) {
      return Status::InvalidArgument("bad Dewey ID " + dewey.ToString());
    }
    if (bp_->node_count() == 0) return std::optional<uint64_t>();
    size_t keep = 0;
    while (keep < cached_.size() && keep < comp.size() &&
           cached_[keep].component == comp[keep]) {
      ++keep;
    }
    bool resume_sideways = false;
    if (keep < cached_.size() && keep < comp.size() && keep > 0 &&
        cached_[keep].component < comp[keep]) {
      resume_sideways = true;  // Continue right from cached_[keep].
    }
    cached_.resize(keep + (resume_sideways ? 1 : 0));

    uint64_t steps = 0;
    if (cached_.empty()) {
      cached_.push_back(PathEntry{0, 0});
      ++steps;
    }
    bool missing = false;
    for (;;) {
      PathEntry& last = cached_.back();
      const size_t level = cached_.size();  // 1-based depth reached.
      if (last.component < comp[level - 1]) {
        ++steps;
        const auto sibling = bp_->FollowingSibling(last.pos);
        if (!sibling.has_value()) {
          missing = true;
          break;
        }
        last.pos = *sibling;
        ++last.component;
        continue;
      }
      if (level == comp.size()) break;  // Arrived.
      ++steps;
      const auto child = bp_->FirstChild(last.pos);
      if (!child.has_value()) {
        missing = true;
        break;
      }
      cached_.push_back(PathEntry{0, *child});
    }
    store_->tree()->BumpBpSteps(steps);
    if (missing) return std::optional<uint64_t>();
    return std::optional<uint64_t>(cached_.back().pos);
  }

  /// Dewey IDs for SWAR-scan hit positions (ascending): the interval-
  /// guided descent of PagedNav::DeweysForHits, with subtree-end globals
  /// replaced by FindClose — one bitvector probe instead of a page read.
  Result<std::vector<NodeT>> DeweysForHits(const std::vector<uint64_t>& hits) {
    std::vector<NodeT> out;
    out.reserve(hits.size());
    struct StackEntry {
      uint32_t component;
      uint64_t pos;
      uint64_t end;
    };
    std::vector<StackEntry> stack;
    std::vector<uint32_t> components;
    uint64_t steps = 0;

    for (const uint64_t hit : hits) {
      std::optional<StackEntry> resume;
      while (!stack.empty() && stack.back().end < hit) {
        resume = stack.back();
        stack.pop_back();
      }
      if (stack.empty()) {
        stack.push_back(StackEntry{0, 0, bp_->FindClose(0)});
        resume.reset();  // The root has no siblings to resume from.
      }
      while (stack.back().pos != hit) {
        StackEntry child{0, 0, 0};
        if (resume.has_value()) {
          ++steps;
          const auto sib = bp_->FollowingSibling(resume->pos);
          if (!sib.has_value()) {
            return Status::Corruption("scan hit outside every sibling");
          }
          child.component = resume->component + 1;
          child.pos = *sib;
          resume.reset();
        } else {
          ++steps;
          const auto first = bp_->FirstChild(stack.back().pos);
          if (!first.has_value()) {
            return Status::Corruption("scan hit below a leaf");
          }
          child.pos = *first;
        }
        for (;;) {
          if (child.pos > hit) {
            return Status::Corruption("scan hit between sibling subtrees");
          }
          child.end = bp_->FindClose(child.pos);
          if (hit <= child.end) break;
          ++steps;
          const auto sib = bp_->FollowingSibling(child.pos);
          if (!sib.has_value()) {
            return Status::Corruption("scan hit outside every sibling");
          }
          child.pos = *sib;
          ++child.component;
        }
        stack.push_back(child);
      }
      components.clear();
      components.reserve(stack.size());
      for (const StackEntry& entry : stack) {
        components.push_back(entry.component);
      }
      out.push_back(NodeT{hit, DeweyId(std::vector<uint32_t>(components)),
                          false});
    }
    store_->tree()->BumpBpSteps(steps);
    return out;
  }

  DocumentStore* store_;
  const BpIndex* bp_;
  BpCursor cursor_;
  std::vector<PathEntry> cached_;
};

/// Anchored evaluation of one NoK tree (Section 6.2 realized): the index
/// supplies candidate matches of the anchor node; the trunk (anchor ->
/// tree root) is verified upward via Dewey prefixes; branch subtrees hang
/// off trunk nodes and are matched one level down; the anchor's own
/// subtree is matched in full.  Every trunk edge is a child axis, so the
/// subject ancestors are exactly the Dewey prefixes -- no search needed.
/// Templated over the navigation backend: trunk nodes come from
/// Nav::NodeAt (B+i lookups in paged mode, BP walks in bp mode).
template <typename Nav>
class AnchoredMatcherT {
 public:
  using NodeT = typename Nav::NodeT;
  using CCursor = ConstrainedCursorT<typename Nav::Cursor>;

  AnchoredMatcherT(Nav* nav, CCursor* cursor, const NokTree& tree,
                   const std::vector<bool>& designated, int anchor,
                   JoinMode join_mode)
      : nav_(nav),
        cursor_(cursor),
        tree_(tree),
        designated_(designated),
        join_mode_(join_mode) {
    // Trunk chain root..anchor.
    const std::vector<int> parents = NokParents(tree);
    for (int n = anchor; n >= 0; n = parents[static_cast<size_t>(n)]) {
      trunk_.push_back(n);
    }
    std::reverse(trunk_.begin(), trunk_.end());
    // Branch data per trunk node (children except the trunk successor).
    branches_.resize(trunk_.size());
    for (size_t j = 0; j + 1 < trunk_.size(); ++j) {
      for (int child : tree.nodes[static_cast<size_t>(trunk_[j])].children) {
        if (child == trunk_[j + 1]) continue;
        branches_[j].push_back(MakeSub(tree, child, designated));
      }
    }
    anchor_sub_ = MakeSub(tree, anchor, designated);
  }

  /// Matches one candidate anchor node; returns the binding when the
  /// whole tree matches around it.
  Result<std::optional<NokBinding>> MatchCandidate(
      const DocumentStore::IndexedNode& hit) {
    const bool doc_root = tree_.root_is_doc_root;
    const size_t trunk_len = trunk_.size();
    // Depth feasibility: for rooted trees the anchor's document depth is
    // fixed; for floating trees it only has a minimum.
    if (doc_root) {
      if (hit.dewey.depth() != trunk_len - 1) {
        return std::optional<NokBinding>();
      }
    } else if (hit.dewey.depth() < trunk_len) {
      return std::optional<NokBinding>();
    }

    NokBinding binding;
    binding.matches.resize(tree_.nodes.size());

    for (size_t j = 0; j < trunk_len; ++j) {
      const int local = trunk_[j];
      const PatternNode* pattern =
          tree_.nodes[static_cast<size_t>(local)].pattern;
      if (pattern->is_doc_root) {
        NodeMatch virtual_match;
        virtual_match.virtual_root = true;
        binding.matches[static_cast<size_t>(local)].push_back(
            virtual_match);
        continue;
      }
      const size_t subject_depth =
          doc_root ? j : hit.dewey.depth() - (trunk_len - 1) + j;
      auto dewey = hit.dewey.Ancestor(hit.dewey.depth() - subject_depth);
      NOK_CHECK(dewey.has_value());
      NOK_ASSIGN_OR_RETURN(NodeT node, nav_->NodeAt(*dewey));

      if (j + 1 == trunk_len) {
        // The anchor: match its whole pattern subtree.
        NokMatcher<CCursor> matcher(&anchor_sub_.sub, cursor_,
                                    anchor_sub_.designated);
        typename NokMatcher<CCursor>::MatchLists lists(
            anchor_sub_.sub.nodes.size());
        NOK_ASSIGN_OR_RETURN(bool ok, matcher.Match(node, &lists));
        if (!ok) return std::optional<NokBinding>();
        NOK_RETURN_IF_ERROR(Merge(anchor_sub_, lists, &binding));
        continue;
      }

      // Inner trunk node: own constraints + branch subtrees.
      NOK_ASSIGN_OR_RETURN(bool ok, cursor_->Matches(node, *pattern));
      if (!ok) return std::optional<NokBinding>();
      if (designated_[static_cast<size_t>(local)]) {
        NOK_ASSIGN_OR_RETURN(NodeMatch match,
                             nav_->ToMatch(node, join_mode_));
        binding.matches[static_cast<size_t>(local)].push_back(
            std::move(match));
      }
      if (!branches_[j].empty()) {
        NOK_ASSIGN_OR_RETURN(bool branch_ok,
                             MatchBranches(node, branches_[j], &binding));
        if (!branch_ok) return std::optional<NokBinding>();
      }
    }
    for (auto& list : binding.matches) SortUnique(&list);
    return std::optional<NokBinding>(std::move(binding));
  }

 private:
  /// Merges a sub-matcher's lists into the binding via the index map.
  Status Merge(const SubMatcherData& sub,
               const typename NokMatcher<CCursor>::MatchLists& lists,
               NokBinding* binding) {
    for (size_t i = 0; i < lists.size(); ++i) {
      for (const NodeT& node : lists[i]) {
        NOK_ASSIGN_OR_RETURN(NodeMatch match,
                             nav_->ToMatch(node, join_mode_));
        binding->matches[static_cast<size_t>(sub.map[i])].push_back(
            std::move(match));
      }
    }
    return Status::OK();
  }

  /// One level of Algorithm 1: every branch must match some child of
  /// `parent`; branches that collect designated matches keep matching all
  /// children.
  Result<bool> MatchBranches(const NodeT& parent,
                             std::vector<SubMatcherData>& branches,
                             NokBinding* binding) {
    const size_t n = branches.size();
    std::vector<char> satisfied(n, 0);
    size_t remaining = n;
    size_t collecting = 0;
    for (const SubMatcherData& b : branches) collecting += b.collects;

    NOK_ASSIGN_OR_RETURN(auto u, cursor_->FirstChild(parent));
    while (u.has_value() && (remaining > 0 || collecting > 0)) {
      for (size_t i = 0; i < n; ++i) {
        if (satisfied[i] && !branches[i].collects) continue;
        NokMatcher<CCursor> matcher(&branches[i].sub, cursor_,
                                    branches[i].designated);
        typename NokMatcher<CCursor>::MatchLists lists(
            branches[i].sub.nodes.size());
        NOK_ASSIGN_OR_RETURN(bool ok, matcher.Match(*u, &lists));
        if (!ok) continue;
        NOK_RETURN_IF_ERROR(Merge(branches[i], lists, binding));
        if (!satisfied[i]) {
          satisfied[i] = 1;
          --remaining;
        }
      }
      NOK_ASSIGN_OR_RETURN(auto next, cursor_->FollowingSibling(*u));
      u = next;
    }
    return remaining == 0;
  }

  Nav* nav_;
  CCursor* cursor_;
  const NokTree& tree_;
  const std::vector<bool>& designated_;
  JoinMode join_mode_;
  std::vector<int> trunk_;
  std::vector<std::vector<SubMatcherData>> branches_;
  SubMatcherData anchor_sub_;
};

const char* ProbeOpName(StartStrategy strategy) {
  switch (strategy) {
    case StartStrategy::kTagIndex:
      return "TagIndexProbe";
    case StartStrategy::kValueIndex:
      return "ValueIndexProbe";
    case StartStrategy::kPathIndex:
      return "PathIndexProbe";
    case StartStrategy::kAuto:
    case StartStrategy::kScan:
      break;
  }
  return "AnchorScan";
}

/// The plan-execution body, templated over the navigation backend; the
/// control flow is identical across backends, so results are too.
template <typename Nav>
Result<std::vector<DeweyId>> RunImpl(DocumentStore* store, Nav* nav,
                                     const QueryPlan& plan,
                                     const NokPartition& partition,
                                     const std::vector<TagId>& tag_table,
                                     const QueryOptions& options,
                                     QueryStats* stats,
                                     ExecutionTrace* trace) {
  using NodeT = typename Nav::NodeT;
  using CCursor = ConstrainedCursorT<typename Nav::Cursor>;

  NOK_CHECK(stats != nullptr && trace != nullptr);
  const size_t n_trees = partition.trees.size();
  NOK_CHECK(plan.trees.size() == n_trees &&
            plan.schedule.size() == n_trees)
      << "plan does not fit the partition";
  *stats = QueryStats{};
  stats->trees.resize(n_trees);
  trace->operators.clear();

  nav->cursor()->set_tag_table(&tag_table);
  CCursor cursor(nav->cursor());

  // NoK matching per tree in plan order — always children before parents
  // (checked below), with each evaluated arc injected into the parent's
  // matching as a node predicate.
  std::vector<std::vector<NokBinding>> bindings(n_trees);
  std::vector<std::vector<NodeMatch>> qualified_roots(n_trees);
  std::vector<char> evaluated(n_trees, 0);
  for (const int tree_id : plan.schedule) {
    const size_t t = static_cast<size_t>(tree_id);
    const NokTree& tree = partition.trees[t];
    const AccessPath& access = plan.trees[t].access;
    QueryStats::TreeStats& tree_stats = stats->trees[t];
    const std::vector<bool> designated =
        ComputeDesignated(partition, tree_id);
    tree_stats.strategy = access.strategy;
    for (const GlobalArc* arc : partition.ArcsFrom(tree_id)) {
      NOK_CHECK(evaluated[static_cast<size_t>(arc->to_tree)])
          << "plan schedule is not children-first";
    }

    const bool anchored = access.strategy != StartStrategy::kScan &&
                          access.anchor != 0 && !HasSiblingOrder(tree);

    if (anchored) {
      // Index-anchored evaluation.
      OperatorStats probe;
      probe.op = ProbeOpName(access.strategy);
      probe.tree = tree_id;
      probe.detail = access.display;
      probe.has_estimate = true;
      probe.estimated = access.cardinality.candidates;
      OpTimer probe_timer(store);
      NOK_ASSIGN_OR_RETURN(auto anchor_hits, FetchHits(store, access));
      probe.rows_out = anchor_hits.size();
      probe_timer.Finish(&probe);
      trace->operators.push_back(std::move(probe));

      if (plan.cost_based) {
        size_t trunk_len = 0;
        const std::vector<TrunkArcCheck> checks = TrunkArcChecks(
            partition, tree, tree_id, access.anchor, &trunk_len,
            qualified_roots);
        if (!checks.empty()) {
          OperatorStats filter;
          filter.op = "SemiJoinFilter";
          filter.tree = tree_id;
          filter.detail = "arcs=" + std::to_string(checks.size());
          filter.rows_in = anchor_hits.size();
          OpTimer filter_timer(store);
          PrefilterAnchorHits(tree, trunk_len, checks, &anchor_hits);
          filter.rows_out = anchor_hits.size();
          filter_timer.Finish(&filter);
          trace->operators.push_back(std::move(filter));
        }
      }

      tree_stats.candidates = anchor_hits.size();
      std::sort(anchor_hits.begin(), anchor_hits.end(),
                [](const DocumentStore::IndexedNode& a,
                   const DocumentStore::IndexedNode& b) {
                  return a.dewey.Compare(b.dewey) < 0;
                });
      anchor_hits.erase(
          std::unique(anchor_hits.begin(), anchor_hits.end(),
                      [](const DocumentStore::IndexedNode& a,
                         const DocumentStore::IndexedNode& b) {
                        return a.dewey == b.dewey;
                      }),
          anchor_hits.end());

      OperatorStats match;
      match.op = "NokMatch";
      match.tree = tree_id;
      match.detail = "anchored";
      match.has_estimate = true;
      match.estimated = access.cardinality.matches;
      match.rows_in = anchor_hits.size();
      OpTimer match_timer(store);
      AnchoredMatcherT<Nav> matcher(nav, &cursor, tree, designated,
                                    access.anchor, options.join_mode);
      for (const auto& hit : anchor_hits) {
        NOK_ASSIGN_OR_RETURN(auto binding, matcher.MatchCandidate(hit));
        if (!binding.has_value()) continue;
        qualified_roots[t].push_back(binding->matches[0].front());
        bindings[t].push_back(std::move(*binding));
      }
      match.rows_out = bindings[t].size();
      match_timer.Finish(&match);
      trace->operators.push_back(std::move(match));
    } else {
      // Whole-tree matching from root candidates.
      std::vector<NodeT> candidates;
      const std::vector<RootArcCheck> root_checks =
          plan.cost_based && !tree.root_is_doc_root
              ? RootArcChecks(partition, tree_id, qualified_roots)
              : std::vector<RootArcCheck>();
      if (tree.root_is_doc_root) {
        OperatorStats scan;
        scan.op = "AnchorScan";
        scan.tree = tree_id;
        scan.detail = "root=(doc-root)";
        scan.has_estimate = true;
        scan.estimated = 1;
        scan.rows_out = 1;
        candidates.push_back(nav->cursor()->VirtualRoot());
        trace->operators.push_back(std::move(scan));
      } else if (access.strategy == StartStrategy::kScan) {
        OperatorStats scan;
        scan.op = "AnchorScan";
        scan.tree = tree_id;
        scan.detail = access.display;
        scan.has_estimate = true;
        scan.estimated = access.cardinality.candidates;
        OpTimer scan_timer(store);
        NOK_ASSIGN_OR_RETURN(
            candidates,
            nav->ScanCandidates(
                *tree.nodes[0].pattern,
                ResolvedTag(tag_table, tree.nodes[0].pattern)));
        scan.rows_out = candidates.size();
        scan_timer.Finish(&scan);
        trace->operators.push_back(std::move(scan));
        if (!root_checks.empty()) {
          OperatorStats filter;
          filter.op = "SemiJoinFilter";
          filter.tree = tree_id;
          filter.detail = "arcs=" + std::to_string(root_checks.size());
          filter.rows_in = candidates.size();
          OpTimer filter_timer(store);
          candidates.erase(
              std::remove_if(candidates.begin(), candidates.end(),
                             [&](const NodeT& node) {
                               return !PassesRootChecks(node.dewey,
                                                        root_checks);
                             }),
              candidates.end());
          filter.rows_out = candidates.size();
          filter_timer.Finish(&filter);
          trace->operators.push_back(std::move(filter));
        }
      } else {
        OperatorStats probe;
        probe.op = ProbeOpName(access.strategy);
        probe.tree = tree_id;
        probe.detail = access.display;
        probe.has_estimate = true;
        probe.estimated = access.cardinality.candidates;
        OpTimer probe_timer(store);
        NOK_ASSIGN_OR_RETURN(auto anchor_hits, FetchHits(store, access));
        probe.rows_out = anchor_hits.size();
        probe_timer.Finish(&probe);
        trace->operators.push_back(std::move(probe));

        if (access.anchor == 0) {
          if (!root_checks.empty()) {
            OperatorStats filter;
            filter.op = "SemiJoinFilter";
            filter.tree = tree_id;
            filter.detail = "arcs=" + std::to_string(root_checks.size());
            filter.rows_in = anchor_hits.size();
            OpTimer filter_timer(store);
            anchor_hits.erase(
                std::remove_if(
                    anchor_hits.begin(), anchor_hits.end(),
                    [&](const DocumentStore::IndexedNode& hit) {
                      return !PassesRootChecks(hit.dewey, root_checks);
                    }),
                anchor_hits.end());
            filter.rows_out = anchor_hits.size();
            filter_timer.Finish(&filter);
            trace->operators.push_back(std::move(filter));
          }
          NOK_ASSIGN_OR_RETURN(candidates, nav->ResolveHits(anchor_hits));
        } else {
          // Index hits below the root but ordering constraints force a
          // whole-tree match: map the hits up to candidate roots.
          const int depth = tree.DepthOf(access.anchor);
          std::vector<DeweyId> roots;
          for (const auto& hit : anchor_hits) {
            auto up = hit.dewey.Ancestor(static_cast<size_t>(depth - 1));
            if (up.has_value()) roots.push_back(std::move(*up));
          }
          NOK_ASSIGN_OR_RETURN(candidates,
                               nav->LocateAll(std::move(roots)));
        }
      }
      tree_stats.candidates = candidates.size();

      OperatorStats match;
      match.op = "NokMatch";
      match.tree = tree_id;
      match.detail = "whole-tree";
      match.has_estimate = true;
      match.estimated = access.cardinality.matches;
      match.rows_in = candidates.size();
      OpTimer match_timer(store);
      NokMatcher<CCursor> matcher(&tree, &cursor, designated);
      for (const NodeT& start : candidates) {
        typename NokMatcher<CCursor>::MatchLists lists(tree.nodes.size());
        NOK_ASSIGN_OR_RETURN(bool ok, matcher.Match(start, &lists));
        if (!ok) continue;
        NokBinding binding;
        binding.matches.resize(tree.nodes.size());
        for (size_t i = 0; i < lists.size(); ++i) {
          for (const NodeT& node : lists[i]) {
            NOK_ASSIGN_OR_RETURN(NodeMatch node_match,
                                 nav->ToMatch(node, options.join_mode));
            binding.matches[i].push_back(std::move(node_match));
          }
          SortUnique(&binding.matches[i]);
        }
        qualified_roots[t].push_back(binding.matches[0].front());
        bindings[t].push_back(std::move(binding));
      }
      match.rows_out = bindings[t].size();
      match_timer.Finish(&match);
      trace->operators.push_back(std::move(match));
    }
    tree_stats.bindings = bindings[t].size();
    SortUnique(&qualified_roots[t]);
    evaluated[t] = 1;

    // Make this tree's qualified roots a predicate on its parent arc's
    // source node.
    const GlobalArc* arc = partition.ArcInto(tree_id);
    if (arc != nullptr) {
      const NokTree& parent_tree =
          partition.trees[static_cast<size_t>(arc->from_tree)];
      const PatternNode* source =
          parent_tree.nodes[static_cast<size_t>(arc->from_node)].pattern;
      cursor.AddConstraint(
          source, typename CCursor::ArcConstraint{arc->axis,
                                                  &qualified_roots[t]});
    }
  }

  // Top-down: a binding is alive when its root is related to an alive
  // parent binding's source match (bindings' injected constraints are
  // already satisfied bottom-up).  Increasing id order visits parents
  // first.
  std::vector<std::vector<char>> alive(n_trees);
  alive[0].assign(bindings[0].size(), 1);
  for (size_t t = 1; t < n_trees; ++t) {
    const GlobalArc* arc = partition.ArcInto(static_cast<int>(t));
    NOK_CHECK(arc != nullptr);

    OperatorStats join;
    join.op = "StructuralSemiJoin";
    join.tree = static_cast<int>(t);
    join.detail = "tree " + std::to_string(arc->from_tree) + " node " +
                  std::to_string(arc->from_node) + " -" +
                  std::string(AxisName(arc->axis)) + "-> tree " +
                  std::to_string(t);
    join.has_estimate = true;
    join.estimated = plan.trees[t].access.cardinality.matches;
    join.rows_in = bindings[t].size();
    OpTimer join_timer(store);

    const size_t parent = static_cast<size_t>(arc->from_tree);
    std::vector<NodeMatch> parent_sources;
    for (size_t b = 0; b < bindings[parent].size(); ++b) {
      if (!alive[parent][b]) continue;
      const auto& sources =
          bindings[parent][b].matches[static_cast<size_t>(arc->from_node)];
      parent_sources.insert(parent_sources.end(), sources.begin(),
                            sources.end());
    }
    SortUnique(&parent_sources);
    alive[t].assign(bindings[t].size(), 0);
    size_t alive_count = 0;
    for (size_t b = 0; b < bindings[t].size(); ++b) {
      const NodeMatch& root = bindings[t][b].matches[0].front();
      for (const NodeMatch& src : parent_sources) {
        if (IsRelated(src, root, arc->axis, options.join_mode)) {
          alive[t][b] = 1;
          ++alive_count;
          break;
        }
      }
    }
    join.rows_out = alive_count;
    join_timer.Finish(&join);
    trace->operators.push_back(std::move(join));
  }

  // Collect the returning node's matches over alive bindings.
  const size_t rt = static_cast<size_t>(partition.returning_tree);
  const int rn = partition.trees[rt].returning_node;
  NOK_CHECK(rn >= 0) << "partition lost the returning node";
  OperatorStats output;
  output.op = "Output";
  output.tree = partition.returning_tree;
  output.detail = "node " + std::to_string(rn);
  std::vector<NodeMatch> results;
  size_t alive_in = 0;
  for (size_t b = 0; b < bindings[rt].size(); ++b) {
    if (!alive[rt][b]) continue;
    ++alive_in;
    const auto& matches = bindings[rt][b].matches[static_cast<size_t>(rn)];
    results.insert(results.end(), matches.begin(), matches.end());
  }
  SortUnique(&results);

  std::vector<DeweyId> out;
  out.reserve(results.size());
  for (NodeMatch& match : results) {
    NOK_CHECK(!match.virtual_root);
    out.push_back(std::move(match.dewey));
  }
  stats->results = out.size();
  output.rows_in = alive_in;
  output.rows_out = out.size();
  trace->operators.push_back(std::move(output));
  return out;
}

}  // namespace

Result<std::vector<DeweyId>> Executor::Run(
    const QueryPlan& plan, const NokPartition& partition,
    const std::vector<TagId>& tag_table, const QueryOptions& options,
    QueryStats* stats, ExecutionTrace* trace) {
  NOK_CHECK(stats != nullptr && trace != nullptr);
  trace->synopsis_used = plan.synopsis_used;
  trace->empty_result = plan.empty_result;
  trace->empty_reason = plan.empty_reason;
  if (plan.empty_result) {
    // Schema-impossible plan: answer before any navigation backend is
    // even constructed — zero subject-tree pages, zero index probes.
    *stats = QueryStats{};
    stats->trees.resize(partition.trees.size());
    trace->operators.clear();
    trace->nav_mode = store_->nav_mode();
    trace->bp_steps = 0;
    trace->bp_tag_blocks_skipped = 0;
    OperatorStats op;
    op.op = "EmptyResult";
    op.detail = plan.empty_reason;
    op.has_estimate = true;
    trace->operators.push_back(std::move(op));
    return std::vector<DeweyId>();
  }
  if (store_->nav_mode() == NavMode::kBp) {
    NOK_ASSIGN_OR_RETURN(const BpIndex* bp, store_->bp_index());
    const StringStore::NavStats before = store_->tree()->nav_stats();
    BpNav nav(store_, bp);
    NOK_ASSIGN_OR_RETURN(
        auto out, RunImpl(store_, &nav, plan, partition, tag_table,
                          options, stats, trace));
    const StringStore::NavStats after = store_->tree()->nav_stats();
    trace->nav_mode = NavMode::kBp;
    trace->bp_steps = after.bp_steps - before.bp_steps;
    trace->bp_tag_blocks_skipped =
        after.bp_tag_blocks_skipped - before.bp_tag_blocks_skipped;
    return out;
  }
  PagedNav nav(store_);
  return RunImpl(store_, &nav, plan, partition, tag_table, options, stats,
                 trace);
}

}  // namespace nok
