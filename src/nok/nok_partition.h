// Partition of a pattern tree into NoK pattern trees (Section 2).
//
// A NoK pattern tree contains only local relationships: child edges and
// following-sibling order constraints.  Global edges (descendant '//',
// following) connect NoK trees.  Any pattern tree partitions uniquely:
// walk from the root; a global edge starts a new NoK tree rooted at its
// target.

#ifndef NOKXML_NOK_NOK_PARTITION_H_
#define NOKXML_NOK_NOK_PARTITION_H_

#include <string>
#include <vector>

#include "nok/pattern_tree.h"

namespace nok {

/// One node of a NoK tree: a view onto a pattern node plus local-children
/// wiring.
struct NokNode {
  const PatternNode* pattern = nullptr;
  /// Indexes (into NokTree::nodes) of the local (child-axis) children.
  std::vector<int> children;
  /// Partial order among `children` positions: (i, j) = child i's match
  /// must precede child j's match among siblings.
  std::vector<std::pair<int, int>> sibling_order;
};

/// A maximal subtree of the pattern tree connected by local axes.
struct NokTree {
  int id = 0;
  /// nodes[0] is the NoK tree root.
  std::vector<NokNode> nodes;
  /// Local index of the query's returning node, or -1.
  int returning_node = -1;
  /// True when the root is the virtual document root (only possible for
  /// tree 0).
  bool root_is_doc_root = false;

  /// Depth (1-based) of a node below the NoK root: the root is 1, its
  /// children 2, ... (well-defined because all edges are child edges).
  int DepthOf(int node_index) const;
};

/// A global edge between two NoK trees.
struct GlobalArc {
  int from_tree = 0;
  int from_node = 0;  ///< Local node index in from_tree.
  int to_tree = 0;    ///< The target NoK tree (matched at its root).
  Axis axis = Axis::kDescendant;  ///< kDescendant or kFollowing.
};

/// The partition: a tree of NoK trees.  trees[0] contains the pattern
/// root; arcs parent each tree (except tree 0) exactly once.
struct NokPartition {
  std::vector<NokTree> trees;
  std::vector<GlobalArc> arcs;
  /// Index of the tree containing the returning node.
  int returning_tree = 0;

  /// Arcs leaving a given tree.
  std::vector<const GlobalArc*> ArcsFrom(int tree) const;
  /// The arc entering a given tree (nullptr for tree 0).
  const GlobalArc* ArcInto(int tree) const;

  std::string ToString() const;
};

/// Computes the partition of a pattern tree.  The pattern tree must
/// outlive the partition (NokNode holds pointers into it).
NokPartition PartitionPattern(const PatternTree& pattern);

/// parent[i] = local index of node i's parent (-1 for the root).
std::vector<int> NokParents(const NokTree& tree);

/// Copies the NoK subtree rooted at `local` into a standalone tree
/// (pre-order).  *mapping (optional) receives old-local-index per new
/// index; the returning node is carried over when it lies inside.
NokTree ExtractNokSubtree(const NokTree& tree, int local,
                          std::vector<int>* mapping = nullptr);

}  // namespace nok

#endif  // NOKXML_NOK_NOK_PARTITION_H_
