// Subject-tree cursors for the NoK matcher.
//
// DomCursor walks an in-memory DomTree; it backs the test oracle and the
// navigational baseline.  The physical StoreCursor lives in
// physical_matcher.h.  Every cursor exposes a *virtual super-root* whose
// single child is the document root, so the pattern tree's virtual
// document-root node matches uniformly.

#ifndef NOKXML_NOK_TREE_CURSOR_H_
#define NOKXML_NOK_TREE_CURSOR_H_

#include <optional>

#include "common/result.h"
#include "nok/pattern_tree.h"
#include "xml/dom.h"

namespace nok {

/// Tag + value constraint test shared by all cursors.
/// value_getter() is only invoked when the pattern has a value predicate.
template <typename ValueGetter>
Result<bool> MatchesConstraints(const PatternNode& pattern,
                                bool is_virtual_root,
                                const std::string& tag,
                                ValueGetter&& value_getter) {
  if (pattern.is_doc_root) return is_virtual_root;
  if (is_virtual_root) return false;
  if (!pattern.wildcard && pattern.tag != tag) return false;
  if (pattern.predicate.active()) {
    NOK_ASSIGN_OR_RETURN(std::optional<std::string> value, value_getter());
    if (!value.has_value()) return false;
    return EvalValuePredicate(pattern.predicate, *value);
  }
  return true;
}

/// Cursor over a DomTree.  NodeT nullptr is the virtual super-root.
class DomCursor {
 public:
  using NodeT = const DomNode*;

  explicit DomCursor(const DomTree* tree) : tree_(tree) {}

  /// The virtual super-root handle.
  NodeT VirtualRoot() const { return nullptr; }

  Result<std::optional<NodeT>> FirstChild(const NodeT& node) {
    if (node == nullptr) {
      return std::optional<NodeT>(tree_->root());
    }
    if (node->children.empty()) return std::optional<NodeT>();
    return std::optional<NodeT>(node->children[0].get());
  }

  Result<std::optional<NodeT>> FollowingSibling(const NodeT& node) {
    if (node == nullptr || node->parent == nullptr) {
      return std::optional<NodeT>();
    }
    const size_t next = node->child_index + 1;
    if (next >= node->parent->children.size()) {
      return std::optional<NodeT>();
    }
    return std::optional<NodeT>(node->parent->children[next].get());
  }

  Result<bool> Matches(const NodeT& node, const PatternNode& pattern) {
    static const std::string kNoTag;
    return MatchesConstraints(
        pattern, node == nullptr, node == nullptr ? kNoTag : node->name,
        [&]() -> Result<std::optional<std::string>> {
          if (node->value.empty()) return std::optional<std::string>();
          return std::optional<std::string>(node->value);
        });
  }

 private:
  const DomTree* tree_;
};

}  // namespace nok

#endif  // NOKXML_NOK_TREE_CURSOR_H_
