// Query planner: cost-based access-path and semi-join-order selection.
//
// The planner consumes a NokPartition plus cheap cardinality estimates
// (exact B+t tag counts from the dictionary, capped B+v value counts,
// capped B+p path counts, the document node count) and emits a QueryPlan
// — a serializable IR describing, per NoK tree, which access path feeds
// the matcher (the paper's Section 6.2 heuristic: value index > selective
// tag index > scan, with the Section 8 path index as a fourth option) and
// in which order the trees are evaluated (the semi-join schedule).
//
// Planning is pure: no index hits are fetched and no subject-tree pages
// are touched beyond the estimate probes, so plans are cacheable (see
// plan_cache.h) and inspectable (`nokq explain`).  The executor
// (executor.h) is the only layer that materializes candidates.

#ifndef NOKXML_NOK_PLANNER_H_
#define NOKXML_NOK_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/document_store.h"
#include "nok/nok_partition.h"
#include "nok/structural_join.h"

namespace nok {

/// Starting-point strategy.  kPathIndex is the paper's Section 8
/// extension: anchor on a whole rooted tag path when single tags are
/// unselective but the path is rare.
enum class StartStrategy { kAuto, kScan, kTagIndex, kValueIndex,
                           kPathIndex };

/// Per-query knobs.
struct QueryOptions {
  StartStrategy strategy = StartStrategy::kAuto;
  /// Containment test for the global-arc joins.
  JoinMode join_mode = JoinMode::kDewey;
  /// kAuto: a tag index is used when the best tag count is below this
  /// fraction of the document's node count; otherwise scan.
  double index_fraction = 1.0 / 16;
  /// Cap for value-selectivity estimation (counting stops here).
  size_t value_estimate_cap = 512;
  /// Consider the path index (B+p) during planning.  Only applies while
  /// the store's positions are fresh (the path index is rebuilt, not
  /// maintained, across updates).
  bool use_path_index = true;
  /// Cost-based semi-join schedule: evaluate the most selective ready
  /// tree first and pre-filter anchor candidates against already-
  /// evaluated child-tree results before any page is fetched for them.
  /// Off reproduces the legacy fixed partition order exactly.
  bool cost_based_join_order = true;
  /// Consult/populate the engine's bounded plan cache.  Off by default:
  /// a cache hit skips the planner's estimate probes, which changes the
  /// per-query I/O profile that diagnostics tests and benchmarks pin
  /// down.  Long-lived engines re-running the same workload turn it on.
  bool use_plan_cache = false;
};

/// How one NoK tree's candidates are produced.  The operands (tag,
/// value, rooted tag path) are recorded here so the executor can fetch
/// hits without re-deriving the planner's choice.
struct AccessPath {
  StartStrategy strategy = StartStrategy::kScan;
  /// Local node index the index hits refer to; 0 with kScan means a
  /// whole-tree match from scanned/virtual roots.
  int anchor = 0;
  /// kTagIndex: the anchor's resolved tag (kInvalidTag when the name is
  /// absent from the document — the probe then yields no hits, which is
  /// the correct empty result).
  TagId tag = kInvalidTag;
  /// kValueIndex: the equality operand.
  std::string value_operand;
  /// kPathIndex: the rooted tag path (root tag first; empty when some
  /// tag on the path is absent — again a correct empty probe).
  std::vector<TagId> tag_path;
  /// Estimated candidate count for this access path (tag counts are
  /// exact; value/path counts are capped at value_estimate_cap).
  uint64_t estimated_candidates = 0;
  /// Display label for plans ("tag=author", "value=\"x\"", ...).
  std::string display;
};

/// Plan for one NoK tree.
struct TreeAccessPlan {
  int tree = 0;
  AccessPath access;
};

/// A complete plan for one partitioned pattern.
///
/// `schedule` lists tree ids in evaluation order.  It is always a valid
/// children-before-parents order: a tree's arc constraints must be
/// installed before its parent tree is matched (witness selection during
/// matching is what keeps the semi-joins sound; a binding-level
/// post-filter could not be).  The legacy order is n-1..0; the
/// cost-based order picks the most selective ready tree first.
struct QueryPlan {
  std::vector<TreeAccessPlan> trees;  ///< Indexed by tree id.
  std::vector<int> schedule;          ///< Tree ids, evaluation order.
  /// Whether the executor may prune anchor candidates with the semi-join
  /// pre-filter (mirrors QueryOptions::cost_based_join_order at plan
  /// time so a cached plan replays identically).
  bool cost_based = true;
  /// Navigation tier the plan was built for (the store's nav_mode at
  /// plan time; the cache key carries it too).  In kBp mode scans and
  /// Dewey resolution run on the in-memory balanced-parentheses index —
  /// a zero-page access path — instead of the paged string.
  NavMode nav_mode = NavMode::kPaged;

  /// Serialized human-readable form (stable; `nokq explain` prints it).
  std::string ToString(const NokPartition& partition) const;
};

/// Stateless plan builder over one DocumentStore.
class Planner {
 public:
  explicit Planner(DocumentStore* store) : store_(store) {}

  /// Plans every tree of the partition and computes the semi-join
  /// schedule.  tag_table maps PatternNode::id -> resolved TagId (see
  /// ResolvePatternTags); estimates come from the dictionary and capped
  /// index probes only — no hits are fetched.
  Result<QueryPlan> Plan(const NokPartition& partition,
                         const std::vector<TagId>& tag_table,
                         const QueryOptions& options);

 private:
  Result<AccessPath> PlanTree(const NokTree& tree,
                              const std::vector<TagId>& tag_table,
                              const QueryOptions& options);

  DocumentStore* store_;
};

/// The evaluation order used by the plan.  Exposed for tests: both
/// orders must be children-before-parents over the partition's arcs.
std::vector<int> FixedSchedule(size_t n_trees);
std::vector<int> SelectivitySchedule(const NokPartition& partition,
                                     const std::vector<TreeAccessPlan>& trees);

/// Human-readable strategy name ("scan", "tag-index", ...).
const char* StrategyName(StartStrategy strategy);

}  // namespace nok

#endif  // NOKXML_NOK_PLANNER_H_
