// Query planner: cost-based access-path and semi-join-order selection.
//
// The planner consumes a NokPartition plus cheap cardinality estimates
// (exact B+t tag counts from the dictionary, capped B+v value counts,
// capped B+p path counts, the document node count) and emits a QueryPlan
// — a serializable IR describing, per NoK tree, which access path feeds
// the matcher (the paper's Section 6.2 heuristic: value index > selective
// tag index > scan, with the Section 8 path index as a fourth option) and
// in which order the trees are evaluated (the semi-join schedule).
//
// When the store carries a path synopsis (path_synopsis.h) the flat
// tag-count estimates are replaced by per-pattern-node cardinalities:
// every child/descendant arc of the pattern is evaluated against the
// trie of distinct rooted paths, so `//a//b` and `//a//c` no longer cost
// the same when one composition never occurs.  A pattern node whose arc
// matches no rooted path proves the whole query empty — the plan is
// marked empty_result and the Executor returns without any I/O.
//
// Planning is pure: no index hits are fetched and no subject-tree pages
// are touched beyond the estimate probes, so plans are cacheable (see
// plan_cache.h) and inspectable (`nokq explain`).  The executor
// (executor.h) is the only layer that materializes candidates.

#ifndef NOKXML_NOK_PLANNER_H_
#define NOKXML_NOK_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/document_store.h"
#include "nok/nok_partition.h"
#include "nok/structural_join.h"

namespace nok {

/// Starting-point strategy.  kPathIndex is the paper's Section 8
/// extension: anchor on a whole rooted tag path when single tags are
/// unselective but the path is rare.
enum class StartStrategy { kAuto, kScan, kTagIndex, kValueIndex,
                           kPathIndex };

/// Per-query knobs.
struct QueryOptions {
  StartStrategy strategy = StartStrategy::kAuto;
  /// Containment test for the global-arc joins.
  JoinMode join_mode = JoinMode::kDewey;
  /// kAuto: a tag index is used when the best tag count is below this
  /// fraction of the document's node count; otherwise scan.
  double index_fraction = 1.0 / 16;
  /// Cap for value-selectivity estimation (counting stops here).
  size_t value_estimate_cap = 512;
  /// Consider the path index (B+p) during planning.  Only applies while
  /// the store's positions are fresh (the path index is rebuilt, not
  /// maintained, across updates).
  bool use_path_index = true;
  /// Cost-based semi-join schedule: evaluate the most selective ready
  /// tree first and pre-filter anchor candidates against already-
  /// evaluated child-tree results before any page is fetched for them.
  /// Off reproduces the legacy fixed partition order exactly.
  bool cost_based_join_order = true;
  /// Consult/populate the engine's bounded plan cache.  Off by default:
  /// a cache hit skips the planner's estimate probes, which changes the
  /// per-query I/O profile that diagnostics tests and benchmarks pin
  /// down.  Long-lived engines re-running the same workload turn it on.
  bool use_plan_cache = false;
  /// Feed estimates from the store's path synopsis when it has one:
  /// per-pattern-node cardinalities and schema-impossible-path pruning
  /// (EmptyResult plans).  Off falls back to flat tag counts — the
  /// `--no-synopsis` ablation.  Recorded in the plan-cache key.
  bool use_synopsis = true;
};

/// Cardinality estimate for one NoK tree.  Flows from access-path
/// selection through semi-join scheduling into executor operator traces
/// (est-vs-actual rows) and explain formatting.
struct Cardinality {
  /// Expected candidates produced by the access-path probe (tag counts
  /// exact; value/path counts capped at value_estimate_cap).
  uint64_t candidates = 0;
  /// Expected bindings produced by this tree's structural match.  With
  /// the path synopsis this is the independence estimate of the node the
  /// evaluator emits bindings for (the anchor under its trunk
  /// constraints, or the tree root for whole-tree matching); without the
  /// synopsis it falls back to `candidates`.
  uint64_t matches = 0;
  /// True when `matches` came from the path synopsis.
  bool from_synopsis = false;
};

/// Per-pattern-node cardinalities derived from the path synopsis.  All
/// vectors are indexed by PatternNode::id (gaps stay zero/empty when an
/// id is unused).  `expected[i]` is the classic independence estimate of
/// how many document nodes match pattern node i *and* its whole pattern
/// subtree: the path-constrained occurrence count `total[i]` scaled by
/// min(1, expected[child]/total[i]) per structural child — existence
/// predicates shrink a node's count by the fraction of its occurrences
/// that can supply a witness.  Order axes (following/preceding) are
/// invisible to paths and contribute no factor.
struct SynopsisCardinalities {
  std::vector<double> expected;       ///< Subtree-pattern match estimate.
  std::vector<double> total;          ///< Occurrences on surviving paths.
  std::vector<std::vector<int>> kids; ///< Structural pattern children.
};

/// How one NoK tree's candidates are produced.  The operands (tag,
/// value, rooted tag path) are recorded here so the executor can fetch
/// hits without re-deriving the planner's choice.
struct AccessPath {
  StartStrategy strategy = StartStrategy::kScan;
  /// Local node index the index hits refer to; 0 with kScan means a
  /// whole-tree match from scanned/virtual roots.
  int anchor = 0;
  /// kTagIndex: the anchor's resolved tag (kInvalidTag when the name is
  /// absent from the document — the probe then yields no hits, which is
  /// the correct empty result).
  TagId tag = kInvalidTag;
  /// kValueIndex: the equality operand.
  std::string value_operand;
  /// kPathIndex: the rooted tag path (root tag first; empty when some
  /// tag on the path is absent — again a correct empty probe).
  std::vector<TagId> tag_path;
  /// Estimated probe candidates and refined tree matches (see
  /// Cardinality).
  Cardinality cardinality;
  /// Display label for plans ("tag=author", "value=\"x\"", ...).
  std::string display;
};

/// Plan for one NoK tree.
struct TreeAccessPlan {
  int tree = 0;
  AccessPath access;
};

/// A complete plan for one partitioned pattern.
///
/// `schedule` lists tree ids in evaluation order.  It is always a valid
/// children-before-parents order: a tree's arc constraints must be
/// installed before its parent tree is matched (witness selection during
/// matching is what keeps the semi-joins sound; a binding-level
/// post-filter could not be).  The legacy order is n-1..0; the
/// cost-based order picks the most selective ready tree first.
struct QueryPlan {
  std::vector<TreeAccessPlan> trees;  ///< Indexed by tree id.
  std::vector<int> schedule;          ///< Tree ids, evaluation order.
  /// Whether the executor may prune anchor candidates with the semi-join
  /// pre-filter (mirrors QueryOptions::cost_based_join_order at plan
  /// time so a cached plan replays identically).
  bool cost_based = true;
  /// Navigation tier the plan was built for (the store's nav_mode at
  /// plan time; the cache key carries it too).  In kBp mode scans and
  /// Dewey resolution run on the in-memory balanced-parentheses index —
  /// a zero-page access path — instead of the paged string.
  NavMode nav_mode = NavMode::kPaged;
  /// Whether the path synopsis fed the estimates (QueryOptions::
  /// use_synopsis AND the store had one; part of the plan-cache key).
  bool synopsis_used = false;
  /// Set when the synopsis proved some pattern arc matches no rooted
  /// path in the document: the schedule is empty and the Executor emits
  /// a single EmptyResult operator — zero pages read.
  bool empty_result = false;
  /// Names the pattern node with the empty match set.
  std::string empty_reason;

  /// Serialized human-readable form (stable; `nokq explain` prints it).
  std::string ToString(const NokPartition& partition) const;
};

/// Stateless plan builder over one DocumentStore.
class Planner {
 public:
  explicit Planner(DocumentStore* store) : store_(store) {}

  /// Plans every tree of the partition and computes the semi-join
  /// schedule.  tag_table maps PatternNode::id -> resolved TagId (see
  /// ResolvePatternTags); estimates come from the dictionary and capped
  /// index probes only — no hits are fetched.
  Result<QueryPlan> Plan(const NokPartition& partition,
                         const std::vector<TagId>& tag_table,
                         const QueryOptions& options);

 private:
  /// `cards`, when non-null, carries the synopsis-refined per-pattern-
  /// node cardinalities; null = flat tag-count estimates.
  Result<AccessPath> PlanTree(const NokTree& tree,
                              const std::vector<TagId>& tag_table,
                              const QueryOptions& options,
                              const SynopsisCardinalities* cards);

  DocumentStore* store_;
};

/// The evaluation order used by the plan.  Exposed for tests: both
/// orders must be children-before-parents over the partition's arcs.
std::vector<int> FixedSchedule(size_t n_trees);
std::vector<int> SelectivitySchedule(const NokPartition& partition,
                                     const std::vector<TreeAccessPlan>& trees);

/// Human-readable strategy name ("scan", "tag-index", ...).
const char* StrategyName(StartStrategy strategy);

}  // namespace nok

#endif  // NOKXML_NOK_PLANNER_H_
