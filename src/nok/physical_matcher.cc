// StoreCursor is header-only (hot path, inlined into the matcher
// template); this translation unit exists to anchor the header's
// compilation and any future out-of-line helpers.

#include "nok/physical_matcher.h"

namespace nok {}  // namespace nok
