// The NoK query engine (Sections 3, 5 and 6.2 of the paper).
//
// Evaluation pipeline for one path expression:
//
//   parse -> pattern tree -> NoK partition
//   for each NoK tree:
//     choose starting points (paper's heuristic, Section 6.2):
//       - a value-equality constraint exists -> value index (most
//         selective one), mapped to candidate NoK roots by walking the
//         Dewey ID up;
//       - otherwise, the most selective tag in the tree if selective
//         enough -> tag index;
//       - otherwise sequential scan of the string store.
//     run physical NoK matching (Algorithm 1 over Algorithm 2) per
//     starting point, collecting one binding per successful start
//   combine bindings along the global arcs with structural semi-joins
//   return the returning node's matches (Dewey IDs in document order)

#ifndef NOKXML_NOK_QUERY_ENGINE_H_
#define NOKXML_NOK_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/document_store.h"
#include "nok/nok_partition.h"
#include "nok/physical_matcher.h"
#include "nok/structural_join.h"

namespace nok {

/// Starting-point strategy.  kPathIndex is the paper's Section 8
/// extension: anchor on a whole rooted tag path when single tags are
/// unselective but the path is rare.
enum class StartStrategy { kAuto, kScan, kTagIndex, kValueIndex,
                           kPathIndex };

/// Per-query knobs.
struct QueryOptions {
  StartStrategy strategy = StartStrategy::kAuto;
  /// Containment test for the global-arc joins.
  JoinMode join_mode = JoinMode::kDewey;
  /// kAuto: a tag index is used when the best tag count is below this
  /// fraction of the document's node count; otherwise scan.
  double index_fraction = 1.0 / 16;
  /// Cap for value-selectivity estimation (counting stops here).
  size_t value_estimate_cap = 512;
  /// Consider the path index (B+p) during planning.  Only applies while
  /// the store's positions are fresh (the path index is rebuilt, not
  /// maintained, across updates).
  bool use_path_index = true;
};

/// Diagnostics from the last Evaluate call.
struct QueryStats {
  /// Per NoK tree: which strategy ran and how many candidates/matches.
  struct TreeStats {
    StartStrategy strategy = StartStrategy::kScan;
    size_t candidates = 0;
    size_t bindings = 0;
  };
  std::vector<TreeStats> trees;
  size_t results = 0;
};

/// One successful NoK match: the matched subject nodes per designated
/// local pattern node (indexed by local node id).
struct NokBinding {
  std::vector<std::vector<NodeMatch>> matches;
};

/// Evaluates path expressions against one DocumentStore.
///
/// An engine is a cheap per-thread object: it holds only the store
/// pointer and the diagnostics of its own last Evaluate call.  For
/// concurrent evaluation, open the store read-only, share the one
/// DocumentStore handle, and give each thread its own QueryEngine —
/// last_stats() then never races across threads.
class QueryEngine {
 public:
  explicit QueryEngine(DocumentStore* store) : store_(store) {}

  /// Runs a path expression; returns the returning node's matches as
  /// Dewey IDs in document order.
  Result<std::vector<DeweyId>> Evaluate(const std::string& xpath,
                                        const QueryOptions& options = {});

  /// Same, over an already-parsed pattern (repeated executions).
  Result<std::vector<DeweyId>> EvaluatePattern(const PatternTree& pattern,
                                               const QueryOptions& options);

  const QueryStats& last_stats() const { return stats_; }

 private:
  using Binding = NokBinding;

  /// How one NoK tree will be evaluated: the anchor is the most selective
  /// constrained node (the paper's Section 6.2 heuristic); anchor 0 with
  /// kScan means a whole-tree match from scanned/virtual roots.
  struct TreePlan {
    StartStrategy strategy = StartStrategy::kScan;
    int anchor = 0;  ///< Local node index the index hits refer to.
    std::vector<DocumentStore::IndexedNode> anchor_hits;
  };

  /// Chooses strategy + anchor + index hits for one tree.  tag_table maps
  /// PatternNode::id -> resolved TagId (see ResolvePatternTags).
  Result<TreePlan> PlanTree(const NokTree& tree,
                            const std::vector<TagId>& tag_table,
                            const QueryOptions& options);

  /// All document nodes whose tag satisfies the NoK root's name test, via
  /// a sequential scan of the string store (the "naive" strategy).
  /// `want` is the root pattern's resolved tag (kInvalidTag for a name
  /// absent from the document).  Selective tags take the fused
  /// NextOpenWithTag path: the scan consults the per-page tag summaries
  /// and Dewey IDs are derived only for the hits.
  Result<std::vector<StoreCursor::NodeT>> ScanCandidates(
      const PatternNode& root_pattern, TagId want);

  /// Dewey IDs for tag-scan hit positions (ascending): an interval-guided
  /// descent that reuses the navigation path across consecutive hits.
  Result<std::vector<StoreCursor::NodeT>> DeweysForHits(
      const std::vector<StorePos>& hits);

  /// Converts sorted candidate Dewey IDs to physical nodes, reusing the
  /// navigation path across consecutive candidates (the slow path used
  /// when stored positions are stale).
  Result<std::vector<StoreCursor::NodeT>> LocateAll(
      std::vector<DeweyId> deweys);

  /// Index hits -> physical nodes (positions when fresh, else LocateAll).
  Result<std::vector<StoreCursor::NodeT>> ResolveHits(
      const std::vector<DocumentStore::IndexedNode>& hits);

  /// NodeT -> NodeMatch (computes the interval in kInterval mode).
  Result<NodeMatch> ToMatch(const StoreCursor::NodeT& node,
                            JoinMode mode);

  DocumentStore* store_;
  QueryStats stats_;
};

}  // namespace nok

#endif  // NOKXML_NOK_QUERY_ENGINE_H_
