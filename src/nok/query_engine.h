// The NoK query engine (Sections 3, 5 and 6.2 of the paper).
//
// Evaluation pipeline for one path expression:
//
//   parse -> pattern tree -> NoK partition
//   plan  -> QueryPlan IR (planner.h): per-NoK-tree access path chosen
//            by the paper's Section 6.2 heuristic from cheap cardinality
//            estimates, plus the semi-join schedule; optionally served
//            from a bounded per-engine plan cache (plan_cache.h)
//   run   -> executor operators (executor.h): probes/scans feed NoK
//            matching per tree, global arcs combine per-tree bindings
//            with structural semi-joins
//   return the returning node's matches (Dewey IDs in document order)
//
// The engine itself only wires the layers together and keeps the last
// query's diagnostics (stats, plan, operator trace for ExplainLast).

#ifndef NOKXML_NOK_QUERY_ENGINE_H_
#define NOKXML_NOK_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/document_store.h"
#include "nok/executor.h"
#include "nok/plan_cache.h"
#include "nok/planner.h"

namespace nok {

/// Evaluates path expressions against one DocumentStore.
///
/// An engine is a cheap per-thread object: it holds only the store
/// pointer and the diagnostics/plan cache of its own queries.  For
/// concurrent evaluation, open the store read-only, share the one
/// DocumentStore handle, and give each thread its own QueryEngine —
/// last_stats() then never races across threads.
class QueryEngine {
 public:
  explicit QueryEngine(DocumentStore* store) : store_(store) {}

  /// Runs a path expression; returns the returning node's matches as
  /// Dewey IDs in document order.
  Result<std::vector<DeweyId>> Evaluate(const std::string& xpath,
                                        const QueryOptions& options = {});

  /// Same, over an already-parsed pattern (repeated executions).
  Result<std::vector<DeweyId>> EvaluatePattern(const PatternTree& pattern,
                                               const QueryOptions& options);

  const QueryStats& last_stats() const { return stats_; }

  /// Raw operator trace of the last query (what ExplainLast renders).
  /// Benchmarks read the per-operator est-vs-actual rows from here.
  const ExecutionTrace& last_trace() const { return last_trace_; }

  /// Renders the last successful query's plan plus the per-operator
  /// runtime trace (estimated vs. actual cardinalities, pages touched,
  /// wall time).  `nokq explain` prints exactly this.
  std::string ExplainLast() const;

  /// The plan cache (see QueryOptions::use_plan_cache).
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// Routes plan caching through a cache shared across threads instead
  /// of the per-engine one (single-writer / multi-reader serving; see
  /// SharedPlanCache).  The cache must outlive the engine.  Null
  /// restores the private cache.
  void set_shared_plan_cache(SharedPlanCache* cache) {
    shared_plan_cache_ = cache;
  }

 private:
  DocumentStore* store_;
  QueryStats stats_;
  PlanCache plan_cache_;
  SharedPlanCache* shared_plan_cache_ = nullptr;
  std::shared_ptr<const QueryPlan> last_plan_;
  std::string last_plan_text_;
  ExecutionTrace last_trace_;
};

}  // namespace nok

#endif  // NOKXML_NOK_QUERY_ENGINE_H_
