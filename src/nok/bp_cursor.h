// BpCursor: the TreeCursor over the in-memory balanced-parentheses index
// (encoding/bp_index.h) — the third navigation tier beside the paged
// StoreCursor (physical_matcher.h) and the tag-summary fused scan.
//
// Tree steps are O(1)-ish bit operations on the BP bitvector: FIRST-CHILD
// is a bit probe, FOLLOWING-SIBLING a findclose, and — unlike the paged
// cursor — PARENT is cheap too (an enclose).  No BufferPool traffic at
// all; value predicates still go through the B+i/data-file pair keyed by
// the Dewey ID, exactly as in paged mode, so answers are identical across
// navigation modes.  Steps are counted into NavStats::bp_steps on the
// owning store so one snapshot covers all tiers.

#ifndef NOKXML_NOK_BP_CURSOR_H_
#define NOKXML_NOK_BP_CURSOR_H_

#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "encoding/bp_index.h"
#include "encoding/document_store.h"
#include "nok/logical_matcher.h"
#include "nok/pattern_tree.h"
#include "nok/tree_cursor.h"

namespace nok {

/// Cursor over a DocumentStore's balanced-parentheses index.
class BpCursor {
 public:
  /// A subject-tree position: BP open-bit position + derived Dewey ID.
  struct NodeT {
    uint64_t pos = 0;
    DeweyId dewey = DeweyId::Root();
    bool virtual_root = false;
  };

  /// `bp` must describe `store`'s current structure (take it from
  /// DocumentStore::bp_index()) and outlive the cursor.
  BpCursor(DocumentStore* store, const BpIndex* bp)
      : store_(store), bp_(bp) {}

  /// The virtual super-root (parent of the document root).
  NodeT VirtualRoot() const {
    NodeT node;
    node.virtual_root = true;
    return node;
  }

  /// Node handle for an arbitrary Dewey ID: a pure BP walk (component k
  /// = FIRST-CHILD then k FOLLOWING-SIBLINGs), no index or page access.
  Result<NodeT> NodeAt(const DeweyId& dewey) {
    const auto& components = dewey.components();
    if (components.empty() || components[0] != 0) {
      return Status::InvalidArgument("bad Dewey ID " + dewey.ToString());
    }
    if (bp_->node_count() == 0) {
      return Status::NotFound("no node with Dewey ID " + dewey.ToString());
    }
    uint64_t pos = 0;
    uint64_t steps = 1;
    for (size_t i = 1; i < components.size(); ++i) {
      ++steps;
      std::optional<uint64_t> child = bp_->FirstChild(pos);
      for (uint64_t k = 0; child.has_value() && k < components[i]; ++k) {
        ++steps;
        child = bp_->FollowingSibling(*child);
      }
      if (!child.has_value()) {
        store_->tree()->BumpBpSteps(steps);
        return Status::NotFound("no node with Dewey ID " +
                                dewey.ToString());
      }
      pos = *child;
    }
    store_->tree()->BumpBpSteps(steps);
    return NodeT{pos, dewey, false};
  }

  Result<std::optional<NodeT>> FirstChild(const NodeT& node) {
    if (node.virtual_root) {
      if (bp_->node_count() == 0) return std::optional<NodeT>();
      return std::optional<NodeT>(NodeT{0, DeweyId::Root(), false});
    }
    store_->tree()->BumpBpSteps(1);
    const auto child = bp_->FirstChild(node.pos);
    if (!child.has_value()) return std::optional<NodeT>();
    return std::optional<NodeT>(NodeT{*child, node.dewey.Child(0), false});
  }

  Result<std::optional<NodeT>> FollowingSibling(const NodeT& node) {
    if (node.virtual_root || node.dewey.depth() == 1) {
      return std::optional<NodeT>();  // The root has no siblings.
    }
    store_->tree()->BumpBpSteps(1);
    const auto sibling = bp_->FollowingSibling(node.pos);
    if (!sibling.has_value()) return std::optional<NodeT>();
    NodeT next{*sibling, node.dewey, false};
    next.dewey.NextSibling();  // In place: no component-vector rebuild.
    return std::optional<NodeT>(std::move(next));
  }

  /// PARENT — the step the paged cursor cannot answer without a rescan.
  Result<std::optional<NodeT>> Parent(const NodeT& node) {
    if (node.virtual_root) return std::optional<NodeT>();
    if (node.dewey.depth() == 1) {
      return std::optional<NodeT>(VirtualRoot());
    }
    store_->tree()->BumpBpSteps(1);
    const auto parent = bp_->Parent(node.pos);
    if (!parent.has_value()) return std::optional<NodeT>();
    std::optional<DeweyId> up = node.dewey.Parent();
    if (!up.has_value()) return std::optional<NodeT>();
    return std::optional<NodeT>(
        NodeT{*parent, *std::move(up), false});
  }

  Result<bool> Matches(const NodeT& node, const PatternNode& pattern) {
    if (pattern.is_doc_root) return node.virtual_root;
    if (node.virtual_root) return false;
    if (!pattern.wildcard) {
      const TagId want = ResolveTag(pattern);
      if (want == kInvalidTag) return false;
      if (bp_->TagAt(node.pos) != want) return false;
    }
    if (pattern.predicate.active()) {
      NOK_ASSIGN_OR_RETURN(auto value, store_->ValueOf(node.dewey));
      if (!value.has_value()) return false;
      return EvalValuePredicate(pattern.predicate, *value);
    }
    return true;
  }

  /// Installs the plan-time tag table (see ResolvePatternTags).
  void set_tag_table(const std::vector<TagId>* table) {
    tag_table_ = table;
  }

  DocumentStore* store() { return store_; }
  const BpIndex* bp() const { return bp_; }

 private:
  TagId ResolveTag(const PatternNode& pattern) {
    if (tag_table_ != nullptr &&
        static_cast<size_t>(pattern.id) < tag_table_->size()) {
      return (*tag_table_)[static_cast<size_t>(pattern.id)];
    }
    auto id = store_->tags()->Lookup(pattern.tag);
    return id.has_value() ? *id : kInvalidTag;
  }

  DocumentStore* store_;
  const BpIndex* bp_;
  const std::vector<TagId>* tag_table_ = nullptr;
};

/// The BP-backed physical matcher: same Algorithm 1, O(1) primitives.
using BpNokMatcher = NokMatcher<BpCursor>;

}  // namespace nok

#endif  // NOKXML_NOK_BP_CURSOR_H_
