#include "nok/structural_join.h"

#include <algorithm>

#include "common/logging.h"

namespace nok {

bool DocOrderLess(const NodeMatch& a, const NodeMatch& b) {
  if (a.virtual_root != b.virtual_root) return a.virtual_root;
  if (a.virtual_root) return false;
  return a.dewey.Compare(b.dewey) < 0;
}

void SortUnique(std::vector<NodeMatch>* matches) {
  std::sort(matches->begin(), matches->end(), DocOrderLess);
  matches->erase(std::unique(matches->begin(), matches->end(),
                             [](const NodeMatch& a, const NodeMatch& b) {
                               return a.virtual_root == b.virtual_root &&
                                      (a.virtual_root ||
                                       a.dewey == b.dewey);
                             }),
                 matches->end());
}

bool IsRelated(const NodeMatch& outer, const NodeMatch& inner, Axis axis,
               JoinMode mode) {
  NOK_CHECK(!inner.virtual_root);
  switch (axis) {
    case Axis::kDescendant:
      if (outer.virtual_root) return true;
      if (mode == JoinMode::kInterval) {
        return outer.start < inner.start && inner.end < outer.end;
      }
      return outer.dewey.IsAncestorOf(inner.dewey);
    case Axis::kFollowing:
      if (outer.virtual_root) return false;  // Nothing follows the root.
      if (mode == JoinMode::kInterval) {
        return inner.start > outer.end;
      }
      return outer.dewey.Compare(inner.dewey) < 0 &&
             !outer.dewey.IsAncestorOf(inner.dewey);
    case Axis::kPreceding:
      // inner precedes outer: strictly before in document order and not
      // an ancestor.
      if (outer.virtual_root) return false;  // Nothing precedes the root.
      if (mode == JoinMode::kInterval) {
        return inner.end < outer.start;
      }
      return inner.dewey.Compare(outer.dewey) < 0 &&
             !inner.dewey.IsAncestorOf(outer.dewey);
    default:
      NOK_CHECK(false) << "structural joins handle global axes only";
      return false;
  }
}

std::vector<NodeMatch> SelectRelatedInners(
    const std::vector<NodeMatch>& outers,
    const std::vector<NodeMatch>& inners, Axis axis, JoinMode mode) {
  std::vector<NodeMatch> out;
  if (outers.empty() || inners.empty()) return out;

  if (axis == Axis::kDescendant) {
    // Ancestor-stack merge (the stack-based structural join of
    // Al-Khalifa et al., which the paper builds on).
    if (outers[0].virtual_root) return inners;
    std::vector<const NodeMatch*> stack;
    size_t i = 0;
    for (const NodeMatch& inner : inners) {
      // Push outers preceding this inner, keeping only the nesting chain.
      while (i < outers.size() && DocOrderLess(outers[i], inner)) {
        while (!stack.empty() &&
               !IsRelated(*stack.back(), outers[i], Axis::kDescendant,
                          mode)) {
          stack.pop_back();
        }
        stack.push_back(&outers[i]);
        ++i;
      }
      while (!stack.empty() &&
             !IsRelated(*stack.back(), inner, Axis::kDescendant, mode)) {
        stack.pop_back();
      }
      if (!stack.empty()) out.push_back(inner);
    }
    return out;
  }

  if (axis == Axis::kFollowing) {
    // An inner qualifies iff some outer's subtree ends before it.  Outers
    // that fail for a given inner are its ancestors (or later nodes), so
    // scanning outers in document order stops fast.
    for (const NodeMatch& inner : inners) {
      for (const NodeMatch& outer : outers) {
        if (!DocOrderLess(outer, inner)) break;
        if (IsRelated(outer, inner, Axis::kFollowing, mode)) {
          out.push_back(inner);
          break;
        }
      }
    }
    return out;
  }

  // Preceding: an inner qualifies iff some outer starts after the inner's
  // subtree.  The failing outers for a given inner are those at or before
  // it plus its descendants; scan outers from the document-order end.
  NOK_CHECK(axis == Axis::kPreceding);
  for (const NodeMatch& inner : inners) {
    for (size_t o = outers.size(); o-- > 0;) {
      const NodeMatch& outer = outers[o];
      if (!DocOrderLess(inner, outer)) break;
      if (IsRelated(outer, inner, Axis::kPreceding, mode)) {
        out.push_back(inner);
        break;
      }
    }
  }
  return out;
}

std::vector<char> FlagOutersWithRelatedInner(
    const std::vector<NodeMatch>& outers,
    const std::vector<NodeMatch>& inners, Axis axis, JoinMode mode) {
  std::vector<char> flags(outers.size(), 0);
  if (inners.empty()) return flags;

  if (axis == Axis::kDescendant) {
    for (size_t i = 0; i < outers.size(); ++i) {
      if (outers[i].virtual_root) {
        flags[i] = 1;
        continue;
      }
      // Descendants of an outer form a contiguous doc-order block right
      // after it; the first inner past the outer decides.
      auto it = std::upper_bound(inners.begin(), inners.end(), outers[i],
                                 DocOrderLess);
      if (it != inners.end() &&
          IsRelated(outers[i], *it, Axis::kDescendant, mode)) {
        flags[i] = 1;
      }
    }
    return flags;
  }

  if (axis == Axis::kFollowing) {
    // The document-order-last inner is the easiest witness.
    const NodeMatch& last = inners.back();
    for (size_t i = 0; i < outers.size(); ++i) {
      flags[i] = IsRelated(outers[i], last, Axis::kFollowing, mode) ? 1 : 0;
    }
    return flags;
  }

  // Preceding: scan inners from the front past the outer's ancestors (at
  // most depth-many) to find a witness that closed before the outer.
  NOK_CHECK(axis == Axis::kPreceding);
  for (size_t i = 0; i < outers.size(); ++i) {
    for (const NodeMatch& inner : inners) {
      if (!DocOrderLess(inner, outers[i])) break;
      if (IsRelated(outers[i], inner, Axis::kPreceding, mode)) {
        flags[i] = 1;
        break;
      }
    }
  }
  return flags;
}

}  // namespace nok
