#include "nok/logical_matcher.h"

namespace nok {

std::vector<bool> ComputeDesignated(const NokPartition& partition,
                                    int tree_index) {
  const NokTree& tree = partition.trees[static_cast<size_t>(tree_index)];
  std::vector<bool> designated(tree.nodes.size(), false);
  designated[0] = true;  // Joins relate trees through their roots.
  if (tree.returning_node >= 0) {
    designated[static_cast<size_t>(tree.returning_node)] = true;
  }
  for (const GlobalArc& arc : partition.arcs) {
    if (arc.from_tree == tree_index) {
      designated[static_cast<size_t>(arc.from_node)] = true;
    }
  }
  return designated;
}

std::vector<bool> ComputeRetained(const NokTree& tree,
                                  const std::vector<bool>& designated) {
  // retained[i] = subtree of i contains a designated node.  Children have
  // larger indexes than parents (pre-order), so one reverse sweep works.
  std::vector<bool> retained(tree.nodes.size(), false);
  for (size_t i = tree.nodes.size(); i-- > 0;) {
    retained[i] = designated[i];
    for (int child : tree.nodes[i].children) {
      if (retained[static_cast<size_t>(child)]) retained[i] = true;
    }
  }
  return retained;
}

}  // namespace nok
