// The succinct physical storage scheme for the subject tree
// (Sections 4.2 and 5 of the paper).
//
// The tree is materialized as a pre-order string: each node contributes an
// "open" symbol carrying its TagId, and a ')' close symbol at the end of
// its subtree — the (a(b)(c)) representation with the redundant open
// parentheses removed.  Open symbols are 2 bytes (high bit of the first
// byte set, 15-bit TagId), close symbols 1 byte (0x00), matching the
// paper's 2-byte Sigma characters and 1-byte ')'.
//
// The string is chopped into fixed-size pages (Figure 5):
//
//   +--------------------------------------------------------------+
//   | st lo hi | used | next_page |  symbols ...  | reserved space |
//   +--------------------------------------------------------------+
//
//   st   level of the last symbol in the *previous* page (0 for the
//        first page), so a page's levels can be decoded in isolation;
//   lo,hi  min/max symbol level occurring in the page — the feather-
//        weight index that lets FOLLOWING-SIBLING skip pages without
//        reading them (Section 5, Example 5);
//   next_page  chain pointer, so update splits can insert pages
//        (Section 4.2);
//   reserved space  a fraction of each page kept empty at build time so
//        small insertions stay local (the paper's load factor r).
//
// Levels follow the paper's convention (the "0123232343432" example in
// Section 5): a running level starts at st; an open symbol increments it,
// a close symbol decrements it, and the symbol's level is the value after
// the step.  The root open symbol has level 1.
//
// All page headers are mirrored in memory (the paper's 21-70 MB for 1 TB
// argument), so skip decisions are free of I/O; page bodies go through a
// BufferPool whose counters the experiments report.

#ifndef NOKXML_ENCODING_STRING_STORE_H_
#define NOKXML_ENCODING_STRING_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "encoding/tag_dictionary.h"
#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/pager.h"

namespace nok {

class TreeUpdater;

/// Position of a symbol: page plus symbol index within the page.
struct StorePos {
  PageId page = kInvalidPage;
  uint16_t idx = 0;

  bool operator==(const StorePos& other) const {
    return page == other.page && idx == other.idx;
  }
};

/// In-memory copy of one page header.
struct StorePageHeader {
  int16_t st = 0;
  int16_t lo = 0;
  int16_t hi = 0;
  uint16_t used = 0;  ///< Symbol bytes in the page body.
  PageId next = kInvalidPage;
};

/// On-page size of a data-page header.
inline constexpr uint32_t kStorePageHeaderSize = 12;

/// (De)serialization of a data-page header at the start of a page buffer.
void EncodeStorePageHeader(char* buf, const StorePageHeader& h);
StorePageHeader DecodeStorePageHeader(const char* buf);

/// Build/open options.
struct StringStoreOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Fraction of each page body reserved for future insertions (the
  /// paper's r; Section 4.2 suggests 20%).
  double reserve_ratio = 0.2;
  size_t pool_frames = 256;
  /// Number of independent buffer-pool LRU shards.  One shard keeps the
  /// classic global LRU; more shards let concurrent reader threads fetch
  /// pages without contending on a single mutex.
  size_t pool_shards = 1;
  /// Open the store for reading only: Flush becomes a no-op and the store
  /// promises never to write, which makes every navigation primitive safe
  /// to call from many threads at once.
  bool read_only = false;
  /// When false, FOLLOWING-SIBLING and subtree scans read every page in
  /// chain order instead of consulting the (st,lo,hi) headers — the
  /// ablation knob for the Section 5 optimization.
  bool use_header_skip = true;
  /// When true, per-page 64-bit tag summaries (see tag_summary.h) are
  /// maintained and consulted by tag-filtered scans, letting
  /// NextOpenWithTag skip pages that certainly lack the tag — the
  /// ablation knob mirroring use_header_skip.  When false, summaries are
  /// neither rebuilt on open nor persisted (the store writes the plain
  /// v1/v2 meta layout).
  bool use_tag_summaries = true;
  /// Store pages with CRC-32C trailers (PageFormat::kChecksummed).  Must
  /// match the format the file was created with.
  bool checksum_pages = false;
};

/// Read (and, via TreeUpdater, write) access to one materialized tree.
///
/// Thread safety: a store opened with Options::read_only supports
/// concurrent navigation from any number of threads — headers_/chain_ are
/// immutable after Open, page access goes through the sharded BufferPool,
/// and NavStats counters are atomic.  A writable store is single-threaded.
class StringStore {
 public:
  using Options = StringStoreOptions;

  /// Streaming writer used at document-build time.  Symbols are appended
  /// in document order; pages are laid out sequentially with the reserve
  /// fraction left free.
  class Builder {
   public:
    /// Takes ownership of an empty file.
    Builder(std::unique_ptr<File> file, Options options = {});
    ~Builder();

    /// Appends the open symbol of a node with the given tag.  *global_pos
    /// (optional) receives the symbol's global position.
    Status Open(TagId tag, uint64_t* global_pos = nullptr);

    /// Appends a close symbol.  Fails if no element is open.
    Status Close();

    /// Current nesting level (0 outside the root).
    int level() const { return level_; }

    /// Finalizes headers and the meta page (stamped with epoch) and
    /// returns a reader over the same file.  Data pages are synced before
    /// the meta page is written, so the meta is the commit record of the
    /// build.  The builder is unusable afterwards.
    Result<std::unique_ptr<StringStore>> Finish(uint64_t epoch = 0);

   private:
    Status AppendSymbol(const char* bytes, uint32_t n, int new_level);
    Status FlushPage(PageId next);

    Options options_;
    Status init_status_;  ///< First I/O error from construction, if any.
    std::unique_ptr<Pager> pager_;
    std::string page_buf_;
    uint32_t fill_limit_;
    PageId cur_page_ = kInvalidPage;
    uint64_t chain_seq_ = 0;  ///< 0-based index of cur_page_ in the chain.
    int16_t st_ = 0;
    int16_t lo_ = 0;
    int16_t hi_ = 0;
    bool page_has_symbols_ = false;
    uint16_t syms_in_page_ = 0;
    uint16_t used_bytes_ = 0;
    int level_ = 0;
    uint64_t node_count_ = 0;
    int max_level_ = 0;
    bool finished_ = false;
    uint64_t cur_tag_bits_ = 0;          ///< Summary of cur_page_ so far.
    std::vector<uint64_t> summaries_;    ///< Per flushed page, chain order.
  };

  /// Opens an existing store; reads the meta page and mirrors all page
  /// headers into memory.
  static Result<std::unique_ptr<StringStore>> Open(
      std::unique_ptr<File> file, Options options = {});

  ~StringStore();

  /// Commits the store: data pages are written and synced first, then the
  /// meta page (if dirty), then synced again, so the meta never points at
  /// unsynced data.
  Status Flush();

  /// Store-generation counter, persisted in the meta page (see
  /// BTree::epoch for the cross-component torn-update check it feeds).
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) {
    if (epoch_ != epoch) {
      epoch_ = epoch;
      meta_dirty_ = true;
    }
  }

  // -------------------------------------------------------------------
  // Primitive tree operations (Algorithm 2 of the paper).

  /// Position of the root's open symbol.
  StorePos RootPos() const;

  /// FIRST-CHILD: the next symbol if it is an open one level deeper.
  Result<std::optional<StorePos>> FirstChild(StorePos pos);

  /// FOLLOWING-SIBLING: the next open symbol at the same level before the
  /// parent closes.  Uses the (st,lo,hi) page skip when enabled.
  Result<std::optional<StorePos>> FollowingSibling(StorePos pos);

  /// Tag of the open symbol at pos (Corruption if pos is a close symbol).
  Result<TagId> TagAt(StorePos pos);

  /// Level of the symbol at pos.
  Result<int> LevelAt(StorePos pos);

  /// Global position of the close symbol matching the open symbol at pos.
  /// Together with GlobalPos(pos) this is the interval the paper feeds to
  /// structural joins (Section 5).
  Result<uint64_t> SubtreeEndGlobal(StorePos pos);

  /// Next open symbol in document order strictly after pos (any level);
  /// the sequential-scan starting-point strategy iterates this.
  Result<std::optional<StorePos>> NextOpen(StorePos pos);

  /// Fused NextOpen + TagAt: the next open symbol strictly after pos
  /// whose tag equals `tag`.  Consults the per-page tag summaries (when
  /// enabled) so pages that certainly lack the tag are skipped without
  /// touching the BufferPool; skips are counted in
  /// NavStats::pages_skipped_by_tag.
  Result<std::optional<StorePos>> NextOpenWithTag(StorePos pos, TagId tag);

  /// Visits every symbol in document order — one sequential chain scan
  /// through the BufferPool.  `visit(is_open, tag)` receives kInvalidTag
  /// for close symbols.  Feeds BP-index construction (bp_index.h) and the
  /// verifier's independent bitvector recompute.
  Status VisitSymbols(const std::function<void(bool, TagId)>& visit);

  // -------------------------------------------------------------------
  // Positions.

  /// Monotone-in-document-order 64-bit position of a symbol
  /// (chain_index * page_size + symbol index; the paper's p * C + o).
  uint64_t GlobalPos(StorePos pos) const;

  /// Inverse of GlobalPos.
  Result<StorePos> PosForGlobal(uint64_t global) const;

  // -------------------------------------------------------------------
  // Introspection.

  uint64_t node_count() const { return node_count_; }
  int max_level() const { return max_level_; }
  /// Number of data pages in the chain.
  size_t chain_length() const { return chain_.size(); }
  /// PageId of the i-th data page in chain order (i < chain_length()).
  PageId chain_page(size_t i) const { return chain_[i]; }
  /// On-disk footprint (the |tree| column of Table 1).
  uint64_t SizeBytes() const { return pager_->SizeBytes(); }

  const StorePageHeader& header(PageId page) const;

  /// The in-memory tag summary of a page (0 when summaries are disabled).
  uint64_t tag_summary(PageId page) const;

  /// Whether the summaries were loaded from the meta extension (format
  /// v3/v4) rather than rebuilt from page bodies on open.
  bool summaries_persisted() const { return summaries_persisted_; }

  /// Recomputes a page's tag summary from its body (independent of the
  /// in-memory mirror) — the verifier cross-checks this against
  /// tag_summary(page).
  Result<uint64_t> ComputeTagSummary(PageId page);

  /// Navigation-level statistics (complementing BufferPool I/O counters).
  /// Counters are atomic so concurrent readers can bump them; nav_stats()
  /// returns a relaxed snapshot.
  struct NavStats {
    uint64_t pages_scanned = 0;   ///< Page bodies materialized.
    uint64_t pages_skipped = 0;   ///< Pages skipped via (st,lo,hi).
    /// Pages skipped because the tag summary ruled the tag out.
    uint64_t pages_skipped_by_tag = 0;
    /// FetchView calls answered by an already-decoded frame decoration
    /// (no symbol re-decode; a subset of pages_scanned).
    uint64_t decode_cache_hits = 0;
    /// O(1) BP-index tree steps taken (FirstChild / FollowingSibling /
    /// Parent / NodeAt navigation in bp mode; zero page traffic).
    uint64_t bp_steps = 0;
    /// 64-node tag blocks dismissed by the BP index's SWAR tag scan.
    uint64_t bp_tag_blocks_skipped = 0;
  };
  NavStats nav_stats() const {
    NavStats snap;
    snap.pages_scanned =
        nav_pages_scanned_.load(std::memory_order_relaxed);
    snap.pages_skipped =
        nav_pages_skipped_.load(std::memory_order_relaxed);
    snap.pages_skipped_by_tag =
        nav_pages_tag_skipped_.load(std::memory_order_relaxed);
    snap.decode_cache_hits =
        nav_decode_cache_hits_.load(std::memory_order_relaxed);
    snap.bp_steps = nav_bp_steps_.load(std::memory_order_relaxed);
    snap.bp_tag_blocks_skipped =
        nav_bp_tag_blocks_.load(std::memory_order_relaxed);
    return snap;
  }
  void ResetNavStats() {
    nav_pages_scanned_.store(0, std::memory_order_relaxed);
    nav_pages_skipped_.store(0, std::memory_order_relaxed);
    nav_pages_tag_skipped_.store(0, std::memory_order_relaxed);
    nav_decode_cache_hits_.store(0, std::memory_order_relaxed);
    nav_bp_steps_.store(0, std::memory_order_relaxed);
    nav_bp_tag_blocks_.store(0, std::memory_order_relaxed);
  }

  /// BP-index navigation counters.  The index itself is immutable and
  /// counter-free; the cursor layer attributes its work here so a single
  /// NavStats snapshot covers all three navigation tiers.
  void BumpBpSteps(uint64_t n) {
    nav_bp_steps_.fetch_add(n, std::memory_order_relaxed);
  }
  void BumpBpTagBlocksSkipped(uint64_t n) {
    nav_bp_tag_blocks_.fetch_add(n, std::memory_order_relaxed);
  }

  BufferPool* buffer_pool() { return pool_.get(); }
  const Options& options() const { return options_; }

  /// Re-reads all page headers and rebuilds the chain map (used after
  /// updates restructure pages).
  Status ReloadHeaders();

  /// Inspects the raw leading bytes of a store file and reports whether it
  /// was written in checksummed page format.  Works in either format
  /// because the meta page starts at offset 0 regardless of the per-page
  /// trailer.  Fails with Corruption if the file does not start with a
  /// string-store meta page.
  static Result<bool> SniffChecksummed(File* file);

 private:
  friend class TreeUpdater;

  /// Decoded view of one page: per-symbol byte offsets, levels, tags.
  struct PageView {
    std::vector<uint16_t> byte_off;
    std::vector<int16_t> level;
    std::vector<TagId> tag;  ///< kInvalidTag for close symbols.
    size_t size() const { return byte_off.size(); }
  };

  explicit StringStore(Options options) : options_(options) {}

  Status Init(std::unique_ptr<File> file);

  /// Pinned page plus its decoded view (cached as a frame decoration).
  struct ViewHandle {
    PageHandle page;
    std::shared_ptr<PageView> view;
  };
  Result<ViewHandle> FetchView(PageId page);

  /// Page after `page` in the chain, or kInvalidPage.
  PageId NextInChain(PageId page) const;

  /// Chain index of a page (NOK_CHECK-fails for pages outside the chain).
  uint64_t ChainSeq(PageId page) const;

  /// Verdict of the ScanForward predicate for one symbol.
  enum class ScanAction { kContinue, kFound, kStop };

  /// Shared forward scan: starting strictly after pos, visits symbols in
  /// document order and asks pred(level, tag) about each; returns the
  /// kFound position, or nullopt on kStop / end of string.  When header
  /// skipping is enabled, pages whose lo exceeds skip_level are skipped
  /// without materializing (they cannot contain a symbol of interest).
  ///
  /// When filter_tag is valid and tag summaries are enabled, a page whose
  /// summary rules the tag out AND whose lo exceeds tag_stop_level is
  /// also skipped.  Callers must guarantee that pred returns kContinue
  /// (never kFound/kStop) for every symbol such a page could contain:
  /// any open symbol with a different tag, and any symbol at a level
  /// above tag_stop_level.  The default INT_MIN stop level asserts that
  /// pred never stops at all (a full-chain scan).
  template <typename Pred>
  Result<std::optional<StorePos>> ScanForward(
      StorePos pos, int skip_level, Pred pred,
      TagId filter_tag = kInvalidTag,
      int tag_stop_level = std::numeric_limits<int>::min());

  /// Rewrites the meta page from the in-memory counters (node count, free
  /// list head).
  Status WriteMetaPage();

  /// Rebuilds chain_/chain_seq_ from the in-memory headers (no I/O).
  Status RebuildChainFromHeaders();

  Options options_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<StorePageHeader> headers_;   // Indexed by PageId.
  std::vector<uint64_t> tag_summaries_;    // Indexed by PageId.
  std::vector<PageId> chain_;              // Chain order.
  std::vector<uint64_t> chain_seq_;        // PageId -> chain index.
  PageId first_data_page_ = kInvalidPage;
  uint64_t node_count_ = 0;
  uint64_t epoch_ = 0;
  int max_level_ = 0;
  PageId free_list_head_ = kInvalidPage;   // Reusable pages after deletes.
  std::atomic<uint64_t> nav_pages_scanned_{0};
  std::atomic<uint64_t> nav_pages_skipped_{0};
  std::atomic<uint64_t> nav_pages_tag_skipped_{0};
  std::atomic<uint64_t> nav_decode_cache_hits_{0};
  std::atomic<uint64_t> nav_bp_steps_{0};
  std::atomic<uint64_t> nav_bp_tag_blocks_{0};
  bool summaries_persisted_ = false;
  bool meta_dirty_ = false;
};

}  // namespace nok

#endif  // NOKXML_ENCODING_STRING_STORE_H_
