// Offline integrity scrub for a document store directory (`nokq verify`).
//
// Five passes, each independent of the machinery it checks:
//
//   1. Page scrub: every page of every paged component file (the tree
//      string and the four B+ tree indexes) is read raw through a Pager in
//      the store's format, so checksum mismatches are reported per page —
//      including pages the higher layers would never visit.
//   2. Structural open: DocumentStore::OpenDir, which validates magics,
//      format versions, the page-chain walk, and cross-component epochs.
//   3. Index cross-check: every B+i (Dewey -> position/value) entry is
//      re-derived by pure FIRST-CHILD / FOLLOWING-SIBLING navigation of
//      the tree string and compared against the stored entry, and its
//      value record is read (which verifies the record CRC).
//   4. Tag-summary cross-check: when the store navigates by per-page tag
//      summaries, every chain page's summary is recomputed from the page
//      body and compared against the word the scans consult, so a stale
//      or corrupted summary cannot silently cause skipped matches.
//   5. BP-sidecar cross-check: when a tree.bpx balanced-parentheses
//      sidecar is present, it is parsed (magic, version, CRC-32C) and its
//      parenthesis bits and preorder tags are compared against a fresh
//      recompute from the page chain; a stale epoch is also flagged,
//      since bp-mode navigation built from a diverged sidecar would
//      answer queries from the wrong topology.
//
// The scrub never repairs anything; it reports.  Repair is rebuilding
// from the source document or restoring from a copy.

#ifndef NOKXML_ENCODING_STORE_VERIFIER_H_
#define NOKXML_ENCODING_STORE_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "encoding/document_store.h"

namespace nok {

/// One problem found by the scrub.
struct VerifyIssue {
  std::string component;  ///< File or subsystem ("tree.nok", "B+i", ...).
  std::string detail;     ///< Human-readable description (names page ids).
};

/// Outcome of VerifyStoreDir.
struct VerifyReport {
  uint64_t pages_checked = 0;    ///< Pages read across all paged files.
  uint64_t entries_checked = 0;  ///< B+i entries cross-checked.
  bool truncated = false;        ///< Issue list hit its cap.
  std::vector<VerifyIssue> issues;

  bool ok() const { return issues.empty(); }
};

/// Scrubs the store in dir.  The Result is an error only when the scrub
/// itself cannot run (e.g. the directory does not exist); damage found in
/// the store is reported through VerifyReport::issues.
Result<VerifyReport> VerifyStoreDir(const std::string& dir,
                                    DocumentStoreOptions options = {});

}  // namespace nok

#endif  // NOKXML_ENCODING_STORE_VERIFIER_H_
