#include "encoding/value_store.h"

#include "common/coding.h"
#include "common/hash.h"

namespace nok {

Result<std::unique_ptr<ValueStore>> ValueStore::Open(
    std::unique_ptr<File> file, Options options) {
  return std::unique_ptr<ValueStore>(
      new ValueStore(std::move(file), options));
}

Status ValueStore::Append(const Slice& value, uint64_t* offset) {
  const uint64_t h = Hash64(value);
  auto it = dedup_.find(h);
  if (it != dedup_.end()) {
    for (uint64_t candidate : it->second) {
      NOK_ASSIGN_OR_RETURN(auto existing, Read(candidate));
      if (Slice(existing) == value) {
        *offset = candidate;
        return Status::OK();
      }
    }
  }
  std::string record;
  PutVarint32(&record, static_cast<uint32_t>(value.size()));
  record.append(value.data(), value.size());
  if (options_.checksum_records) {
    PutFixed32(&record, Crc32c(value));
  }
  NOK_RETURN_IF_ERROR(file_->Append(Slice(record), offset));
  dedup_[h].push_back(*offset);
  return Status::OK();
}

Result<std::string> ValueStore::Read(uint64_t offset) const {
  const uint64_t size = file_->Size();
  if (offset >= size) {
    return Status::OutOfRange("value offset past end of data file");
  }
  char header[5];
  const size_t header_len =
      static_cast<size_t>(std::min<uint64_t>(5, size - offset));
  Slice header_slice;
  NOK_RETURN_IF_ERROR(
      file_->ReadAt(offset, header_len, header, &header_slice));
  uint32_t len = 0;
  const char* p =
      GetVarint32Ptr(header, header + header_len, &len);
  if (p == nullptr) {
    return Status::Corruption("bad value record header");
  }
  const uint64_t value_off = offset + static_cast<uint64_t>(p - header);
  const uint64_t trailer = options_.checksum_records ? 4 : 0;
  if (value_off + len + trailer > size) {
    return Status::Corruption("value record overruns data file");
  }
  std::string out(len, '\0');
  Slice unused;
  if (len > 0) {
    NOK_RETURN_IF_ERROR(file_->ReadAt(value_off, len, out.data(), &unused));
  }
  if (options_.checksum_records) {
    char crc_buf[4];
    NOK_RETURN_IF_ERROR(
        file_->ReadAt(value_off + len, 4, crc_buf, &unused));
    const uint32_t stored = DecodeFixed32(crc_buf);
    const uint32_t actual = Crc32c(Slice(out));
    if (stored != actual) {
      return Status::Corruption(
          "checksum mismatch on value record at offset " +
          std::to_string(offset) + ": stored " + std::to_string(stored) +
          ", computed " + std::to_string(actual));
    }
  }
  return out;
}

}  // namespace nok
