// DocumentStore: the complete physical representation of one XML document
// (Figure 3 of the paper).
//
// It bundles:
//   * the succinct tree string (StringStore)          -- |tree| in Table 1
//   * the tag dictionary (name <-> Sigma symbol)
//   * the value data file (ValueStore)
//   * B+t: tag  -> Dewey IDs of nodes with that tag   -- |B+t|
//   * B+v: hash(value) -> Dewey IDs of nodes with it  -- |B+v|
//   * B+i: Dewey ID -> value-record offset            -- |B+i|
//
// Indexes reference nodes by Dewey ID (never by physical position):
// positions are derived during navigation, which is what keeps the scheme
// adaptive to updates (Section 4).  A Dewey ID is converted to a physical
// position by walking FIRST-CHILD/FOLLOWING-SIBLING along its components.

#ifndef NOKXML_ENCODING_DOCUMENT_STORE_H_
#define NOKXML_ENCODING_DOCUMENT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/result.h"
#include "common/status.h"
#include "encoding/bp_index.h"
#include "encoding/dewey.h"
#include "encoding/path_synopsis.h"
#include "encoding/string_store.h"
#include "encoding/tag_dictionary.h"
#include "encoding/value_store.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace nok {

/// Component file names inside a store directory (shared with the
/// offline verifier).
namespace store_files {
inline constexpr const char* kTree = "tree.nok";
inline constexpr const char* kValues = "values.dat";
inline constexpr const char* kDict = "tags.dict";
inline constexpr const char* kTagIdx = "tag.idx";
inline constexpr const char* kValIdx = "val.idx";
inline constexpr const char* kIdIdx = "id.idx";
inline constexpr const char* kPathIdx = "path.idx";
inline constexpr const char* kStale = "positions.stale";
inline constexpr const char* kBpIndex = "tree.bpx";
inline constexpr const char* kSynopsis = "synopsis.pds";
}  // namespace store_files

/// How tree steps are answered at query time.
enum class NavMode {
  /// The paper's paged string cursor (BufferPool page decodes, header /
  /// tag-summary skips).  The durability story; always available.
  kPaged,
  /// The in-memory balanced-parentheses index (bp_index.h): O(1)
  /// FIRST-CHILD / FOLLOWING-SIBLING / PARENT with zero page traffic,
  /// loaded from the checksummed tree.bpx sidecar or rebuilt in one
  /// sequential scan at open time.
  kBp,
};

/// Short name for explain output / CLI flags ("paged" / "bp").
const char* NavModeName(NavMode mode);

/// Build/open knobs.
struct DocumentStoreOptions {
  /// Page size of the tree string store.
  uint32_t page_size = kDefaultPageSize;
  /// Page size of the B+ tree indexes (kept independent: experiments often
  /// shrink tree pages, but index entries -- Dewey keys -- need room).
  uint32_t index_page_size = kDefaultPageSize;
  /// Page fraction reserved for updates (paper Section 4.2).
  double reserve_ratio = 0.2;
  /// Buffer-pool frames for the tree string.
  size_t pool_frames = 256;
  /// Buffer-pool frames for each B+ tree.
  size_t index_pool_frames = 64;
  /// Buffer-pool LRU shards for the tree string (see BufferPool).  More
  /// shards cut mutex contention when many threads query one store.
  size_t pool_shards = 1;
  /// Buffer-pool LRU shards for each B+ tree.
  size_t index_pool_shards = 1;
  /// Open every component read-only (O_RDONLY files, mutating operations
  /// rejected).  Required for serving one store handle to many query
  /// threads concurrently; see DESIGN.md "Concurrency model".  Only
  /// meaningful for OpenDir.
  bool read_only = false;
  /// Toggle for the (st,lo,hi) page-skip optimization (Section 5).
  bool use_header_skip = true;
  /// Toggle for the per-page tag summaries consulted by tag-filtered
  /// scans (see tag_summary.h).  Mirrors use_header_skip as an ablation
  /// knob; when off, the tree string is written in the plain v1/v2
  /// format.
  bool use_tag_summaries = true;
  /// Store every component with integrity checksums: CRC-32C page
  /// trailers in the tree string and the B+ trees, per-record CRCs in the
  /// value file.  Recorded in the tree meta page, so OpenDir detects the
  /// format automatically; this flag only matters at Build time.
  bool checksum_pages = false;
  /// Navigation tier used by query evaluation (see NavMode).  With kBp,
  /// Build/OpenDir materialize the balanced-parentheses index (from the
  /// tree.bpx sidecar when its epoch matches, else one sequential scan)
  /// and persist the sidecar on commit; the paged cursor remains
  /// available for verification and updates.
  NavMode nav_mode = NavMode::kPaged;
  /// Maintain the DataGuide-style path synopsis (path_synopsis.h): built
  /// in the same pass as the rest of the store (or loaded from the
  /// synopsis.pds sidecar when its epoch matches) and fed to the Planner
  /// for per-pattern-node cardinality estimates and schema-impossible
  /// pruning.  Off = the planner falls back to flat tag counts (the
  /// `--no-synopsis` ablation).
  bool use_synopsis = true;
  /// Directory for the store files; empty = fully in-memory.
  std::string dir;
  /// Hook for wrapping component files (fault injection in tests).  When
  /// set, every component file is opened through this factory; `path` is
  /// the file path (or the bare component name when dir is empty).
  std::function<Result<std::unique_ptr<File>>(const std::string& path,
                                              bool create)>
      file_factory;
  /// Write-ahead-log knobs (storage/wal.h).  With the WAL enabled,
  /// OpenDir first runs crash recovery on the directory, then captures
  /// every update in memory until Flush commits the batch: one WAL fsync
  /// makes the whole batch durable before any base file is touched, so a
  /// crash anywhere either replays the batch or restores the pre-update
  /// state — never a half-applied mix.  Requires a non-empty dir and a
  /// writable open; only meaningful for OpenDir.
  struct WalOptions {
    bool enabled = false;
    /// Auto-commit (Flush) after this many update operations;
    /// 0 = only an explicit Flush commits.
    uint64_t group_commit_ops = 0;
    /// Fold a position refresh into each commit: when the batch left
    /// positions stale, Flush runs RefreshPositions inside the same WAL
    /// transaction, so the rebuilt index pages and the staleness-flag
    /// removal ride the one commit fsync instead of needing a separate
    /// post-commit transaction (ROADMAP item 1 follow-up).
    bool refresh_positions_on_commit = false;
  };
  WalOptions wal;
};

/// Document-level statistics (the columns of Table 1).
struct DocumentStoreStats {
  uint64_t xml_bytes = 0;        ///< Size of the source document.
  uint64_t node_count = 0;       ///< Subject-tree nodes (incl. attributes).
  double avg_depth = 0;          ///< Average leaf depth.
  int max_depth = 0;
  uint64_t distinct_tags = 0;
  uint64_t tree_bytes = 0;       ///< |tree|: the succinct string.
  uint64_t tag_index_bytes = 0;  ///< |B+t|.
  uint64_t value_index_bytes = 0;///< |B+v|.
  uint64_t id_index_bytes = 0;   ///< |B+i|.
  uint64_t path_index_bytes = 0; ///< |B+p| (Section 8 extension).
  uint64_t data_bytes = 0;       ///< Value data file.
};

/// One stored document plus its indexes.
///
/// Thread safety: a store opened via OpenDir with Options::read_only set
/// supports concurrent reads (Locate/Navigate/ValueOf/NodesWith*/
/// Estimate*) from any number of threads sharing the one handle; each
/// thread runs its own QueryEngine over it.  Mutating operations
/// (InsertSubtree/DeleteSubtree/RefreshPositions/Flush) then fail with
/// InvalidArgument.  A writable store is single-threaded.
class DocumentStore {
 public:
  using Options = DocumentStoreOptions;

  /// Parses xml and builds all stores/indexes in a single SAX pass.
  static Result<std::unique_ptr<DocumentStore>> Build(const std::string& xml,
                                                      Options options = {});

  /// Reopens a store previously built with a non-empty dir.
  static Result<std::unique_ptr<DocumentStore>> OpenDir(Options options);

  // -- components -------------------------------------------------------
  StringStore* tree() { return tree_.get(); }
  TagDictionary* tags() { return &tags_; }
  ValueStore* values() { return values_.get(); }
  BTree* tag_index() { return tag_index_.get(); }
  BTree* value_index() { return value_index_.get(); }
  BTree* id_index() { return id_index_.get(); }
  BTree* path_index() { return path_index_.get(); }

  /// Navigation tier this store was opened with.
  NavMode nav_mode() const { return options_.nav_mode; }

  /// The balanced-parentheses index for the current structure, built or
  /// rebuilt on demand (never returns null on OK).  The pointer stays
  /// valid until the next structural update (structure_version() bump).
  ///
  /// Thread safety: with Options::nav_mode == kBp the index is
  /// materialized eagerly by Build/OpenDir, so concurrent readers of a
  /// read-only store only ever hit the already-built fast path; on-demand
  /// (re)building only happens on writable — single-threaded — handles.
  Result<const BpIndex*> bp_index();

  /// Whether the current in-memory BP index came from a matching
  /// tree.bpx sidecar (vs a rebuild scan of the page chain).
  bool bp_loaded_from_sidecar() const { return bp_from_sidecar_; }

  /// The path synopsis for the current structure (path_synopsis.h), or
  /// null when Options::use_synopsis is off.  Materialized eagerly by
  /// Build/OpenDir and kept current across updates via
  /// structure_version(), so read-only concurrent readers only ever see
  /// the already-built immutable instance.
  const PathSynopsis* path_synopsis() const { return synopsis_.get(); }

  /// Whether the current in-memory synopsis came from a matching
  /// synopsis.pds sidecar (vs a rebuild scan).
  bool synopsis_loaded_from_sidecar() const { return synopsis_from_sidecar_; }

  // -- navigation helpers ----------------------------------------------
  /// Physical position of the node with the given Dewey ID: a B+i lookup
  /// while positions are fresh, otherwise a FIRST-CHILD /
  /// FOLLOWING-SIBLING walk along the components.
  Result<StorePos> Locate(const DeweyId& id);

  /// Physical position by pure navigation (FIRST-CHILD /
  /// FOLLOWING-SIBLING walk), never consulting the indexes.  The scrubber
  /// uses this as the independent ground truth to check B+i against.
  Result<StorePos> Navigate(const DeweyId& id);

  /// The node's value (nullopt if it has none).
  Result<std::optional<std::string>> ValueOf(const DeweyId& id);

  /// Whether the positions stored in index payloads are still valid (no
  /// structural update since the last build).
  bool positions_fresh() const { return positions_fresh_; }

  /// A node as returned by the tag/value indexes.
  struct IndexedNode {
    DeweyId dewey = DeweyId::Root();
    uint64_t pos = 0;  ///< Global position; meaningful iff fresh.
  };

  // -- index access ------------------------------------------------------
  /// All nodes with the given tag, in index order.  limit = 0 means
  /// unbounded.
  Result<std::vector<IndexedNode>> NodesWithTag(TagId tag,
                                                size_t limit = 0);

  /// Nodes whose value equals `value` exactly (hash collisions are
  /// resolved against the data file).
  Result<std::vector<IndexedNode>> NodesWithValue(const Slice& value);

  /// Nodes whose rooted tag path equals `path` (root tag first) — the
  /// path index the paper's Section 8 proposes for queries where single
  /// tags are unselective but the full path is rare.  limit = 0 means
  /// unbounded.
  Result<std::vector<IndexedNode>> NodesWithPath(
      const std::vector<TagId>& path, size_t limit = 0);

  /// Number of nodes with this rooted tag path, counted up to cap.
  Result<size_t> EstimatePathCount(const std::vector<TagId>& path,
                                   size_t cap);

  /// Occurrence count of a tag (exact, from the dictionary).
  uint64_t CountTag(TagId tag) const { return tags_.OccurrenceCount(tag); }

  /// Number of nodes with this value, counted up to cap (cheap
  /// selectivity estimate for the Section 6.2 heuristic).
  Result<size_t> EstimateValueCount(const Slice& value, size_t cap);

  // -- updates (Section 4.2; implemented in updater.cc) ------------------
  /// Parses xml_fragment (one element) and inserts it as child number
  /// child_index of the node `parent`.  Structure pages are updated
  /// locally; index entries of the new nodes are added and the Dewey IDs
  /// of shifted following siblings are rewritten.
  Status InsertSubtree(const DeweyId& parent, uint32_t child_index,
                       const std::string& xml_fragment);

  /// Deletes the subtree rooted at `node` (must not be the root).
  Status DeleteSubtree(const DeweyId& node);

  /// Recomputes the physical positions cached in every index payload by
  /// one pass over the tree string (the paper's "reconstruct the ID B+
  /// tree" maintenance step) and clears the staleness flag.  Queries run
  /// correctly without this — position lookups fall back to navigation —
  /// but index-anchored evaluation is fastest when positions are fresh.
  Status RefreshPositions();

  // -- bookkeeping --------------------------------------------------------
  const DocumentStoreStats& stats() const { return stats_; }
  /// Recomputes component sizes (after updates).
  void RefreshSizeStats();

  /// Commits every component to disk as one new store generation: the
  /// epoch counter is bumped, the value file and the indexes are written
  /// and synced first, then the tree string's meta page — the store-level
  /// commit record — last.  After a crash anywhere inside Flush, OpenDir
  /// either sees the previous consistent generation or reports Corruption
  /// (mismatched epochs); it never silently mixes generations.
  Status Flush();

  /// Current store generation (see Flush).
  uint64_t epoch() const { return epoch_; }

  /// True when this handle commits through the write-ahead log.
  bool wal_enabled() const { return wal_writer_ != nullptr; }
  /// What crash recovery did when this handle opened (WAL mode only).
  const RecoveryReport& recovery_report() const { return recovery_report_; }
  /// WAL commit counters (WAL mode only; empty stats otherwise).
  WalWriter::Stats wal_stats() const {
    return wal_writer_ != nullptr ? wal_writer_->stats()
                                  : WalWriter::Stats();
  }
  /// The writer's WAL (null unless wal_enabled); the snapshot layer hooks
  /// pre-image retention into it.
  WalWriter* wal_writer() { return wal_writer_.get(); }

  /// Monotonic count of structural/index mutations in this process:
  /// bumped by every InsertSubtree/DeleteSubtree and by
  /// RefreshPositions.  epoch() only advances on Flush, so plan caches
  /// combine both to invalidate on any change that can alter planning
  /// inputs (tag counts, value counts, position freshness).  In-memory
  /// only — not persisted.
  uint64_t structure_version() const { return structure_version_; }

  /// Clears all buffer pools and I/O counters (cold-start for benchmarks).
  Status DropCaches();

 private:
  DocumentStore() = default;

  Status InitFiles(const Options& options);
  Status SaveDictionary();

  /// Opens one component file, honoring options_.file_factory and, in
  /// WAL mode, wrapping it for transactional capture.
  Result<std::unique_ptr<File>> OpenComponent(const char* name,
                                              bool create) const;

  /// WAL mode: opens the transaction covering the next update batch.
  /// Rejects a poisoned handle (a previous update failed half-captured).
  Status BeginWalTxn();
  /// WAL mode: called after an update op.  On success, counts the op
  /// toward the group-commit threshold.  On failure, compares the
  /// writer's capture counter with `ticks_before`: an op that failed
  /// after capturing writes aborts the transaction and poisons the
  /// handle; a validation failure that captured nothing passes through.
  Status FinishWalOp(Status op_status, uint64_t ticks_before);

  /// The update-op bodies (updater.cc); the public entry points wrap
  /// them in WAL transaction bookkeeping.
  Status InsertSubtreeImpl(const DeweyId& parent, uint32_t child_index,
                           const std::string& xml_fragment);
  Status DeleteSubtreeImpl(const DeweyId& node);
  Status RefreshPositionsImpl();

  /// Moves a node's B+i/B+t/B+v entries from old_dewey to new_dewey
  /// (sibling-shift maintenance during updates; updater.cc).
  Status RewriteIndexEntries(const DeweyId& old_dewey,
                             const DeweyId& new_dewey, TagId tag);
  /// Drops a node's B+i/B+t/B+v entries (subtree deletion; updater.cc).
  Status RemoveIndexEntries(const DeweyId& dewey, TagId tag);

  friend class TreeUpdater;

  /// Marks stored positions stale (persisted); called by the updaters.
  /// Also drops the in-memory BP index: the topology changed, so the
  /// bitvector is rebuilt lazily (or at the next Flush).
  Status MarkPositionsStale();

  /// Makes bp_index_ match the current structure: loads the sidecar when
  /// its epoch and shape agree, else rebuilds by one sequential scan.
  /// When the synopsis is also missing, its trie is accumulated from the
  /// same scan (the BpIndex::Build observer) — one pass builds both.
  Status EnsureBpIndex();

  /// Writes the tree.bpx sidecar (dir-backed, non-WAL stores only; the
  /// CRC-32C payload checksum makes a torn write detectable).
  Status PersistBpSidecar();

  /// Makes synopsis_ match the current structure: loads the synopsis.pds
  /// sidecar when its epoch and shape agree, else rebuilds by one
  /// sequential scan (unless EnsureBpIndex already piggy-backed the
  /// build onto its own scan).  No-op when Options::use_synopsis is off.
  Status EnsureSynopsis();

  /// Loads the synopsis.pds sidecar when it is usable (no in-process
  /// structural updates, epoch and node count match); returns whether it
  /// was adopted.
  bool TrySynopsisSidecar();

  /// Writes the synopsis.pds sidecar (same guards as PersistBpSidecar).
  Status PersistSynopsisSidecar();

  Options options_;
  /// Declared before the components: members destroy in reverse order,
  /// and every TxnFile handed to a component must unregister from the
  /// writer before the writer dies.
  std::unique_ptr<WalWriter> wal_writer_;
  RecoveryReport recovery_report_;
  uint64_t wal_ops_pending_ = 0;
  /// Set when an update op failed after capturing partial writes: the
  /// transaction was aborted, but the in-memory component state has
  /// diverged from disk, so every further mutation is rejected until the
  /// store is reopened.
  bool wal_poisoned_ = false;
  std::unique_ptr<StringStore> tree_;
  TagDictionary tags_;
  std::unique_ptr<ValueStore> values_;
  std::unique_ptr<BTree> tag_index_;
  std::unique_ptr<BTree> value_index_;
  std::unique_ptr<BTree> id_index_;
  std::unique_ptr<BTree> path_index_;
  DocumentStoreStats stats_;
  uint64_t epoch_ = 0;
  uint64_t structure_version_ = 0;
  bool positions_fresh_ = true;
  /// Balanced-parentheses navigation tier (bp_index.h).  Immutable once
  /// built; valid while bp_version_ == structure_version_.
  std::unique_ptr<BpIndex> bp_index_;
  uint64_t bp_version_ = 0;
  bool bp_from_sidecar_ = false;
  /// DataGuide-style path synopsis (path_synopsis.h).  Immutable once
  /// built; valid while synopsis_version_ == structure_version_.
  std::unique_ptr<PathSynopsis> synopsis_;
  uint64_t synopsis_version_ = 0;
  bool synopsis_from_sidecar_ = false;
};

/// Encoding helpers shared by the builder, the query engine and tests.
///
/// Index payloads carry the node's global position alongside its Dewey ID
/// as a navigation shortcut.  Positions shift when the structure is
/// edited, so DocumentStore tracks freshness: after an update the stored
/// positions are stale and lookups fall back to Dewey navigation (the
/// paper's "the node ID B+ tree may need to be reconstructed" trade-off).
namespace index_keys {

/// B+t key for a tag.
std::string TagKey(TagId tag);
/// B+v key for a value.
std::string ValueKey(const Slice& value);
/// B+p key for a rooted tag path (root tag first).  Big-endian per
/// component, so byte prefixes are path prefixes.
std::string PathKey(const std::vector<TagId>& path);
/// B+t / B+v value payload: global position + Dewey ID.
std::string NodeRefPayload(uint64_t pos, const DeweyId& dewey);
Status ParseNodeRefPayload(const Slice& payload, uint64_t* pos,
                           DeweyId* dewey);
/// B+i value payload: global position + optional value-record offset.
std::string IdPayload(uint64_t pos, bool has_value, uint64_t value_offset);
Status ParseIdPayload(const Slice& payload, uint64_t* pos, bool* has_value,
                      uint64_t* value_offset);

}  // namespace index_keys

}  // namespace nok

#endif  // NOKXML_ENCODING_DOCUMENT_STORE_H_
