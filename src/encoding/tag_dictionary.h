// Tag dictionary: the mapping from element names to symbols of the
// alphabet Sigma (Section 2 of the paper).
//
// Every distinct tag name (attribute pseudo-tags "@name" included) gets a
// 15-bit TagId; the succinct string representation stores the TagId, which
// is what makes a "character" of the materialized string 2 bytes wide
// (Section 4.2).  The dictionary also counts tag occurrences, which feeds
// the tag-selectivity heuristic of Section 6.2.

#ifndef NOKXML_ENCODING_TAG_DICTIONARY_H_
#define NOKXML_ENCODING_TAG_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace nok {

/// Symbol of the tag alphabet.  Valid ids are 1..32767; 0 is invalid.
using TagId = uint16_t;

inline constexpr TagId kInvalidTag = 0;
/// Ids must fit in 15 bits so the string store can mark the first byte of
/// an open symbol with the high bit (see string_store.h).
inline constexpr TagId kMaxTagId = 0x7fff;

/// Bidirectional name <-> TagId mapping with occurrence counts.
class TagDictionary {
 public:
  TagDictionary() = default;

  /// Returns the id for name, assigning a fresh one on first sight.
  /// Fails with OutOfRange after 32767 distinct names.
  Result<TagId> Intern(std::string_view name);

  /// The id for name if known.
  std::optional<TagId> Lookup(std::string_view name) const;

  /// The name for a valid id; NOK_CHECK-fails on an unknown id.
  const std::string& Name(TagId id) const;

  /// Number of distinct names (the "tags" column of Table 1).
  size_t size() const { return names_.size(); }

  /// Occurrence bookkeeping for the selectivity heuristic.
  void AddOccurrence(TagId id, uint64_t n = 1);
  /// Decrements the count (used by subtree deletion).
  void SubOccurrence(TagId id, uint64_t n = 1);
  uint64_t OccurrenceCount(TagId id) const;
  /// Total occurrences across all tags (= subject tree node count).
  uint64_t total_occurrences() const { return total_; }

  /// Serialization (one small file per document store).  The blob carries
  /// a "NOKDICT2" header with a CRC-32C of the payload and the store
  /// epoch, so a torn or bit-rotted dictionary file is detected at open.
  std::string Serialize(uint64_t epoch = 0) const;

  /// Accepts both the current header format and the headerless legacy
  /// format (which reads back with epoch 0).  *epoch, if non-null,
  /// receives the stored epoch.
  static Result<TagDictionary> Deserialize(const Slice& data,
                                           uint64_t* epoch = nullptr);

 private:
  std::unordered_map<std::string, TagId> ids_;
  std::vector<std::string> names_;    // names_[id - 1]
  std::vector<uint64_t> counts_;      // counts_[id - 1]
  uint64_t total_ = 0;
};

}  // namespace nok

#endif  // NOKXML_ENCODING_TAG_DICTIONARY_H_
