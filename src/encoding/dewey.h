// Dewey IDs (Section 4.1 of the paper).
//
// The Dewey ID of a node encodes the path of child indexes from the root:
// the root is "0" and the i-th child (0-based) of a node d is "d.i".
// Dewey IDs are derived for free during a pre-order traversal, which is
// why the paper uses them to connect the structure store with the value
// store without materializing node ids in the tree string.
//
// The binary encoding is one big-endian 32-bit word per component, so
// byte-wise comparison of encodings orders IDs first by document order of
// the common path and then by depth — and ancestorship is exactly the
// proper-prefix relation.

#ifndef NOKXML_ENCODING_DEWEY_H_
#define NOKXML_ENCODING_DEWEY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace nok {

/// A Dewey ID: a non-empty vector of child indexes, root-first.
class DeweyId {
 public:
  /// The root's ID ("0").
  static DeweyId Root() { return DeweyId({0}); }

  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  /// ID of this node's child at 0-based index i.
  DeweyId Child(uint32_t i) const {
    std::vector<uint32_t> c = components_;
    c.push_back(i);
    return DeweyId(std::move(c));
  }

  /// Advances this ID to its following sibling in place (increments the
  /// last component).  The matcher's sibling loops use this instead of
  /// rebuilding the component vector through components()/Child().
  void NextSibling() { ++components_.back(); }

  /// ID of the parent, or nullopt for the root.
  std::optional<DeweyId> Parent() const {
    if (components_.size() <= 1) return std::nullopt;
    return DeweyId(std::vector<uint32_t>(components_.begin(),
                                         components_.end() - 1));
  }

  /// The ancestor k levels up (k = 0 returns *this); nullopt if the ID is
  /// not deep enough.
  std::optional<DeweyId> Ancestor(size_t k) const {
    if (k >= components_.size()) return std::nullopt;
    return DeweyId(std::vector<uint32_t>(
        components_.begin(),
        components_.end() - static_cast<std::ptrdiff_t>(k)));
  }

  /// Number of components (root = 1); equals the node's level.
  size_t depth() const { return components_.size(); }

  const std::vector<uint32_t>& components() const { return components_; }

  /// True iff this is a proper ancestor of other.
  bool IsAncestorOf(const DeweyId& other) const;

  /// Document-order comparison (<0, 0, >0); an ancestor sorts before its
  /// descendants.
  int Compare(const DeweyId& other) const;

  /// Big-endian binary encoding (4 bytes per component).
  std::string Encode() const;
  static Result<DeweyId> Decode(const Slice& data);

  /// "0.2.1" display form (Example in Section 4.1).
  std::string ToString() const;

  bool operator==(const DeweyId& other) const {
    return components_ == other.components_;
  }
  bool operator<(const DeweyId& other) const { return Compare(other) < 0; }

 private:
  std::vector<uint32_t> components_;
};

}  // namespace nok

#endif  // NOKXML_ENCODING_DEWEY_H_
