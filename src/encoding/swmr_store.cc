#include "encoding/swmr_store.h"

#include <utility>
#include <vector>

namespace nok {

namespace {

/// Components whose base bytes the writer mutates in place and snapshot
/// readers therefore need pre-image versioning for.  The dictionary and
/// the stale-positions marker are whole-file replaced and only read at
/// snapshot-open time (the writer is quiescent then), so they need none.
const char* const kVersionedComponents[] = {
    store_files::kTree,   store_files::kValues, store_files::kTagIdx,
    store_files::kValIdx, store_files::kIdIdx,  store_files::kPathIdx,
};

/// The component name is the path's last segment (OpenComponent builds
/// paths as dir + "/" + name).
std::string ComponentName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Result<std::unique_ptr<SwmrStore>> SwmrStore::Open(const std::string& dir,
                                                   Options options) {
  if (dir.empty()) {
    return Status::InvalidArgument(
        "SwmrStore needs a store directory (snapshots reopen the "
        "component files read-only)");
  }
  std::unique_ptr<SwmrStore> store(new SwmrStore(std::move(options)));
  store->dir_ = dir;

  DocumentStoreOptions writer_options = store->options_.store;
  writer_options.dir = dir;
  writer_options.read_only = false;
  writer_options.wal.enabled = true;
  writer_options.wal.group_commit_ops = store->options_.group_commit_ops;
  NOK_ASSIGN_OR_RETURN(store->writer_,
                       DocumentStore::OpenDir(writer_options));

  store->tracker_ = std::make_shared<SnapshotTracker>();
  for (const char* name : kVersionedComponents) {
    auto versions = std::make_shared<PageVersionStore>();
    store->tracker_->Track(versions);
    store->versions_.emplace(name, std::move(versions));
  }

  // Pre-image retention: called by the WAL commit for every base byte
  // range about to change.  With no live snapshot at or below
  // valid_through, the pre-image can never be read — skip it.
  SwmrStore* raw = store.get();
  store->writer_->wal_writer()->set_retain_hook(
      [raw](const std::string& name, uint64_t offset, std::string preimage,
            uint64_t valid_through) {
        if (raw->tracker_->MinActiveEpoch(valid_through + 1) >
            valid_through) {
          return;
        }
        auto it = raw->versions_.find(name);
        if (it == raw->versions_.end()) return;
        it->second->Retain(offset, std::move(preimage), valid_through);
      });

  NOK_RETURN_IF_ERROR(store->PublishSnapshot());
  return store;
}

Result<std::unique_ptr<DocumentStore>> SwmrStore::OpenSnapshotStore(
    uint64_t epoch) {
  DocumentStoreOptions snap = options_.store;
  snap.dir = dir_;
  snap.read_only = true;
  snap.wal = DocumentStoreOptions::WalOptions{};
  // Every component file is served through a SnapshotFile pinned to
  // `epoch`: base bytes with retained pre-images overlaid, so the store
  // keeps seeing exactly this generation while the writer commits later
  // ones in place.
  auto versions = versions_;  // snapshot's own shared_ptr copies
  snap.file_factory =
      [versions, epoch](const std::string& path,
                        bool create) -> Result<std::unique_ptr<File>> {
    if (create) {
      return Status::InvalidArgument(
          "snapshot store tried to create " + path);
    }
    NOK_ASSIGN_OR_RETURN(auto base, OpenPosixFileReadOnly(path));
    auto it = versions.find(ComponentName(path));
    std::shared_ptr<PageVersionStore> store_versions =
        it != versions.end() ? it->second : nullptr;
    return std::unique_ptr<File>(new SnapshotFile(
        std::move(base), std::move(store_versions), epoch));
  };
  return DocumentStore::OpenDir(std::move(snap));
}

Status SwmrStore::PublishSnapshot() {
  const uint64_t epoch = writer_->epoch();
  NOK_ASSIGN_OR_RETURN(auto snap_store, OpenSnapshotStore(epoch));

  // Register before the snapshot becomes reachable, so the retain hook
  // sees it as active from the first moment a reader could hold it.
  tracker_->Register(epoch);
  std::shared_ptr<SnapshotTracker> tracker = tracker_;
  std::shared_ptr<Snapshot> snap(
      new Snapshot(std::move(snap_store), epoch),
      // The deleter owns a tracker reference: a snapshot handed to a
      // reader may drain after the SwmrStore itself is destroyed.
      [tracker](Snapshot* s) {
        const uint64_t e = s->epoch();
        delete s;
        tracker->Release(e);
      });

  {
    MutexLock lock(&mu_);
    current_ = std::move(snap);
    ++snapshots_published_;
  }
  // Now that `epoch` is the current generation, versions only older
  // snapshots could read may already be dead.
  tracker_->AdvanceEpoch(epoch);
  return Status::OK();
}

Status SwmrStore::InsertSubtree(const DeweyId& parent, uint32_t child_index,
                                const std::string& xml_fragment) {
  return writer_->InsertSubtree(parent, child_index, xml_fragment);
}

Status SwmrStore::DeleteSubtree(const DeweyId& node) {
  return writer_->DeleteSubtree(node);
}

Status SwmrStore::RefreshPositions() { return writer_->RefreshPositions(); }

Status SwmrStore::Commit() {
  NOK_RETURN_IF_ERROR(writer_->Flush());
  NOK_RETURN_IF_ERROR(PublishSnapshot());
  {
    MutexLock lock(&mu_);
    ++commits_;
  }
  return Status::OK();
}

std::shared_ptr<SwmrStore::Snapshot> SwmrStore::snapshot() const {
  MutexLock lock(&mu_);
  return current_;
}

SwmrStore::Stats SwmrStore::stats() const {
  Stats out;
  {
    MutexLock lock(&mu_);
    out.commits = commits_;
    out.snapshots_published = snapshots_published_;
    out.current_epoch = current_ != nullptr ? current_->epoch() : 0;
  }
  out.retained_entries = tracker_->retained_entries();
  out.retained_bytes = tracker_->retained_bytes();
  out.min_active_epoch = tracker_->MinActiveEpoch(out.current_epoch);
  return out;
}

}  // namespace nok
