// Value information storage (Section 4.1, Example 3 of the paper).
//
// Element contents are detached from the structure and stored sequentially
// in a data file as (len, value) records.  Nodes with equal values share
// one record (the paper's "keep only one copy" optimization).  The hashed
// value B+ tree (B+v) and Dewey-ID B+ tree (B+i) that point into this file
// are owned by DocumentStore.

#ifndef NOKXML_ENCODING_VALUE_STORE_H_
#define NOKXML_ENCODING_VALUE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"

namespace nok {

/// Behaviour knobs for a ValueStore.
struct ValueStoreOptions {
  /// Append records as (len, value, crc32c(value)) and verify the CRC on
  /// every Read, so bit rot and torn record writes surface as Corruption.
  /// Must match the format the file was written with.
  bool checksum_records = false;
};

/// Append-only data file of (len, value) records.
class ValueStore {
 public:
  using Options = ValueStoreOptions;

  /// Opens a value store over a file (empty or previously written).
  /// Takes ownership of the file.
  static Result<std::unique_ptr<ValueStore>> Open(
      std::unique_ptr<File> file, Options options = {});

  /// Appends value (deduplicated: an identical existing record's offset is
  /// returned instead of writing a new one).  *offset receives the record
  /// position usable with Read().
  Status Append(const Slice& value, uint64_t* offset);

  /// Reads the record at offset.
  Result<std::string> Read(uint64_t offset) const;

  /// Data file size in bytes.
  uint64_t SizeBytes() const { return file_->Size(); }

  Status Sync() { return file_->Sync(); }

 private:
  ValueStore(std::unique_ptr<File> file, Options options)
      : file_(std::move(file)), options_(options) {}

  std::unique_ptr<File> file_;
  Options options_;
  /// Dedup map: value hash -> offsets of records with that hash (collision
  /// candidates are verified by reading).  Rebuilt lazily: populated from
  /// appends only, so reopening a store loses dedup across sessions —
  /// harmless (only a small size increase on later appends).
  std::unordered_map<uint64_t, std::vector<uint64_t>> dedup_;
};

}  // namespace nok

#endif  // NOKXML_ENCODING_VALUE_STORE_H_
