// Update support for the succinct storage scheme (Section 4.2 of the
// paper).
//
// TreeUpdater performs the string-level edits: inserting the encoded
// symbols of a subtree before an existing symbol, and deleting the symbol
// range of a subtree.  Edits are local: they touch the affected page, use
// its reserved space when the insertion fits (the paper's load factor r),
// and otherwise split by chaining freshly allocated pages through the
// next-page pointers — exactly the cut-and-paste procedure of the paper's
// Section 4.2 example.  Deletions that empty a page unlink it from the
// chain and recycle it through a free list.
//
// The higher-level DocumentStore::InsertSubtree / DeleteSubtree (defined
// in updater.cc as well) additionally maintain the B+t/B+v/B+i indexes:
// entries for the inserted/deleted nodes are added/removed, and the Dewey
// IDs of the shifted following siblings are rewritten — the "indexes need
// to be updated" cost the paper attributes to Dewey IDs.

#ifndef NOKXML_ENCODING_UPDATER_H_
#define NOKXML_ENCODING_UPDATER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "encoding/string_store.h"

namespace nok {

/// String-level editor for a StringStore.
class TreeUpdater {
 public:
  explicit TreeUpdater(StringStore* store) : store_(store) {}

  /// Inserts the (balanced) encoded symbol string `symbols` immediately
  /// before the symbol at `before`.  node_delta is the number of open
  /// symbols in the insertion (added to the store's node count).
  Status InsertBefore(StorePos before, const std::string& symbols,
                      uint64_t node_delta);

  /// Deletes the symbols from `from` (an open symbol) through `to` (its
  /// matching close) inclusive.  node_delta is the number of open symbols
  /// removed.
  Status DeleteRange(StorePos from, StorePos to, uint64_t node_delta);

  /// Encodes the symbol string of a subtree given pre-order (tag, close)
  /// steps; used by DocumentStore and tests.  Appends an open symbol for
  /// tag != kInvalidTag and a close symbol otherwise.
  static void AppendOpenSymbol(std::string* out, TagId tag);
  static void AppendCloseSymbol(std::string* out);

  /// Pages touched (written) by the last operation — the locality metric
  /// reported by bench_update.
  size_t last_pages_touched() const { return last_pages_touched_; }
  /// Pages newly allocated (splits) by the last operation.
  size_t last_pages_allocated() const { return last_pages_allocated_; }

 private:
  /// Byte offset of symbol idx within its page body.
  Result<uint16_t> ByteOffsetOf(StorePos pos, uint32_t* symbol_bytes);

  /// Recomputes lo/hi of a page from its st and body, updating both the
  /// on-page header and the in-memory mirror.  Returns the level after the
  /// last symbol (the st of the next page).
  Result<int16_t> RecomputeHeader(PageId page);

  /// Allocates a page, preferring the free list.
  Status AllocatePage(PageId* id);

  /// Persists the store's meta page (node count, free list).
  Status WriteMeta();

  StringStore* store_;
  size_t last_pages_touched_ = 0;
  size_t last_pages_allocated_ = 0;
};

}  // namespace nok

#endif  // NOKXML_ENCODING_UPDATER_H_
