// DataGuide-style path synopsis — every distinct rooted tag path in the
// document with its node count (ROADMAP item 3; Arion et al., "Path
// Summaries and Path Partitioning in Modern XML Databases").
//
// The synopsis is an immutable trie: one node per distinct rooted path
// /a/b/c, holding the number of document nodes whose rooted path is
// exactly that, plus the path length (the level every such node sits at
// — for a rooted-path trie the two are the same thing).  It is built in
// one pass over the document symbols (the SAX stream at Build time, or
// the same single VisitSymbols scan that rebuilds the BP index) and is
// tiny: its size is the number of distinct paths, not the number of
// nodes.
//
// The Planner evaluates pattern arcs against the trie: a child arc maps
// a set of trie nodes to their matching children, a descendant arc to
// their matching subtrees.  Summing counts over the resulting match set
// yields a per-pattern-node cardinality estimate; an empty match set
// proves the whole query is schema-impossible and the Executor can
// return without touching a single page.
//
// Thread safety: immutable after construction; every method is const,
// so any number of threads may query one instance concurrently.
// Versioning against the store is the owner's job: DocumentStore keys
// the in-memory instance to structure_version() and the persisted
// sidecar to epoch(), exactly like the BP index (DESIGN.md section 15).
//
// Storage is a preorder-flattened array with subtree spans: node i's
// descendants are exactly the indexes in (i, subtree_end(i)), and its
// children are found by hopping j -> subtree_end(j) — no child pointers
// needed at query time.
//
// Sidecar format (*.pds), all integers little-endian fixed-width:
//
//   +0   magic "NOKPSYNP"            (8 bytes)
//   +8   format version, currently 1 (4 bytes)
//   +12  epoch the synopsis was built against (8 bytes)
//   +20  document node count n        (8 bytes)
//   +28  CRC-32C of bytes [12, 28) + the payload (4 bytes), so a flipped
//        epoch or node-count byte is detected, not just payload damage
//   +32  payload: path count (4 bytes), then one record per path node in
//        preorder: TagId (2 bytes), count (8 bytes), parent index + 1
//        (4 bytes, 0 for a top-level path).  Levels and subtree spans
//        are recomputed on load and validated against the preorder.

#ifndef NOKXML_ENCODING_PATH_SYNOPSIS_H_
#define NOKXML_ENCODING_PATH_SYNOPSIS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "encoding/tag_dictionary.h"
#include "storage/file.h"

namespace nok {

class StringStore;

/// Immutable trie of distinct rooted tag paths with per-path counts.
class PathSynopsis {
 public:
  /// Sentinel trie index for the document root (the virtual node above
  /// the top-level elements): its children are the level-1 paths and its
  /// descendants are every path.
  static constexpr uint32_t kVirtualRoot = ~uint32_t{0};

  /// One distinct rooted path, stored in preorder.
  struct PathNode {
    TagId tag = kInvalidTag;   ///< Last tag on the path.
    uint64_t count = 0;        ///< Document nodes with exactly this path.
    uint32_t level = 1;        ///< Path length == document level (root = 1).
    int32_t parent = -1;       ///< Trie index of the prefix path, -1 at top.
    uint32_t subtree_end = 0;  ///< One past this path's subtree in preorder.
  };

  /// Incremental builder fed open/close events in document order — the
  /// DocumentStore SAX pass and the BP-index VisitSymbols scan both
  /// drive one of these, so the synopsis never costs an extra pass.
  class Builder {
   public:
    Builder() = default;

    /// Descends into a child with `tag`, creating the trie path lazily.
    void Open(TagId tag);

    /// Ascends one level.
    void Close();

    /// Validates balance, flattens the trie to preorder, and stamps the
    /// result with `epoch`.  The builder is spent afterwards.
    Result<std::unique_ptr<PathSynopsis>> Finish(uint64_t epoch);

   private:
    struct TrieNode {
      TagId tag = kInvalidTag;
      uint64_t count = 0;
      uint32_t level = 1;
      std::vector<uint32_t> children;
    };

    std::vector<TrieNode> trie_;
    std::vector<uint32_t> roots_;  ///< Top-level (level-1) trie indexes.
    std::vector<uint32_t> stack_;  ///< Trie indexes of the open path.
    uint64_t opens_ = 0;
    bool unbalanced_ = false;  ///< A Close arrived with nothing open.
  };

  /// Builds the synopsis in one sequential scan of the paged string
  /// (chain-order page decodes).  `epoch` stamps the result for sidecar
  /// versioning.
  static Result<std::unique_ptr<PathSynopsis>> Build(StringStore* tree,
                                                     uint64_t epoch);

  /// Serializes to the checksummed sidecar byte format described above.
  std::string Serialize() const;

  /// Parses and validates a serialized sidecar (magic, version, shape,
  /// CRC-32C, preorder consistency, count totals).
  static Result<std::unique_ptr<PathSynopsis>> Deserialize(
      std::string_view bytes);

  /// Writes the serialized form at offset 0 of `file`, truncating any
  /// previous content, and syncs.
  Status SaveTo(File* file) const;

  /// Reads and Deserializes a whole sidecar file.
  static Result<std::unique_ptr<PathSynopsis>> LoadFrom(File* file);

  // -------------------------------------------------------------------
  // Shape.

  /// Number of distinct rooted paths.
  size_t path_count() const { return nodes_.size(); }
  /// Document nodes the synopsis was built from.
  uint64_t node_count() const { return node_count_; }
  /// Store epoch the synopsis was built against.
  uint64_t epoch() const { return epoch_; }
  /// Re-stamps the epoch (DocumentStore::Flush: the structure is
  /// unchanged, the generation advanced).
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  /// Shallowest / deepest path length present (0 when empty).
  uint32_t min_level() const { return min_level_; }
  uint32_t max_level() const { return max_level_; }
  const PathNode& node(size_t i) const { return nodes_[i]; }
  uint64_t MemoryBytes() const {
    return nodes_.size() * sizeof(PathNode);
  }

  // -------------------------------------------------------------------
  // Match-set queries.  A match set is a list of trie indexes (possibly
  // containing kVirtualRoot for the document root); the Planner threads
  // them through pattern arcs and sums counts for cardinality estimates.

  /// Appends the children of `parent` (the level-1 paths when `parent`
  /// is kVirtualRoot) whose tag equals `tag`; `wildcard` keeps them all.
  void CollectChildren(uint32_t parent, TagId tag, bool wildcard,
                       std::vector<uint32_t>* out) const;

  /// Appends the strict descendants of `parent` (every path when
  /// `parent` is kVirtualRoot) whose tag equals `tag`; `wildcard` keeps
  /// them all.
  void CollectDescendants(uint32_t parent, TagId tag, bool wildcard,
                          std::vector<uint32_t>* out) const;

  /// True if `node` lies strictly inside `ancestor`'s subtree (every
  /// real index lies inside kVirtualRoot's).
  bool IsDescendantOf(uint32_t ancestor, uint32_t node) const {
    if (ancestor == kVirtualRoot) return node != kVirtualRoot;
    if (node == kVirtualRoot) return false;
    return ancestor < node && node < nodes_[ancestor].subtree_end;
  }

  /// Trie index of `node`'s parent (kVirtualRoot for level-1 paths).
  uint32_t ParentOf(uint32_t node) const {
    const int32_t p = nodes_[node].parent;
    return p < 0 ? kVirtualRoot : static_cast<uint32_t>(p);
  }

  /// Sum of counts over a match set (kVirtualRoot counts as one node).
  uint64_t TotalCount(const std::vector<uint32_t>& set) const;

 private:
  PathSynopsis() = default;

  /// Recomputes levels and subtree spans from the parent links and
  /// rejects anything that is not a consistent preorder forest with
  /// positive counts summing to node_count_.
  Status Validate();

  std::vector<PathNode> nodes_;  ///< Preorder.
  uint64_t node_count_ = 0;
  uint64_t epoch_ = 0;
  uint32_t min_level_ = 0;
  uint32_t max_level_ = 0;
};

}  // namespace nok

#endif  // NOKXML_ENCODING_PATH_SYNOPSIS_H_
