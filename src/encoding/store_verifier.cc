#include "encoding/store_verifier.h"

#include <memory>
#include <utility>

#include "btree/btree.h"
#include "encoding/bp_index.h"
#include "encoding/dewey.h"
#include "encoding/path_synopsis.h"
#include "encoding/string_store.h"
#include "storage/file.h"
#include "storage/pager.h"

namespace nok {

namespace {

// Beyond this many issues the store is toast and more detail is noise.
constexpr size_t kMaxIssues = 100;

void AddIssue(VerifyReport* report, std::string component,
              std::string detail) {
  if (report->issues.size() >= kMaxIssues) {
    report->truncated = true;
    return;
  }
  report->issues.push_back(
      VerifyIssue{std::move(component), std::move(detail)});
}

/// Reads every page of one paged component file, reporting each page that
/// fails (checksum mismatch, short file, ...).
void ScrubPagedFile(const std::string& dir, const char* name,
                    uint32_t page_size, PageFormat format,
                    VerifyReport* report) {
  const std::string path = dir + "/" + name;
  if (!FileExists(path)) {
    AddIssue(report, name, "file is missing");
    return;
  }
  auto file = OpenPosixFile(path, /*create=*/false);
  if (!file.ok()) {
    AddIssue(report, name, file.status().ToString());
    return;
  }
  auto pager = Pager::Open(std::move(file).ValueOrDie(), page_size, format);
  if (!pager.ok()) {
    AddIssue(report, name, pager.status().ToString());
    return;
  }
  const auto& p = pager.ValueOrDie();
  std::vector<char> buf(page_size);
  for (PageId id = 0; id < p->page_count(); ++id) {
    ++report->pages_checked;
    Status s = p->ReadPage(id, buf.data());
    if (!s.ok()) {
      AddIssue(report, name, s.ToString());
    }
  }
}

}  // namespace

Result<VerifyReport> VerifyStoreDir(const std::string& dir,
                                    DocumentStoreOptions options) {
  if (dir.empty()) {
    return Status::InvalidArgument("verify requires a store directory");
  }
  if (!FileExists(dir + "/" + store_files::kTree)) {
    return Status::NotFound("no document store in " + dir + " (" +
                            store_files::kTree + " is missing)");
  }
  VerifyReport report;

  // Pass 1: raw page scrub of every paged file, in the format the tree
  // meta page records.
  PageFormat format = PageFormat::kRaw;
  {
    auto tree_file = OpenPosixFile(dir + "/" + store_files::kTree,
                                   /*create=*/false);
    if (!tree_file.ok()) {
      AddIssue(&report, store_files::kTree, tree_file.status().ToString());
      return report;
    }
    auto checksummed =
        StringStore::SniffChecksummed(tree_file.ValueOrDie().get());
    if (!checksummed.ok()) {
      AddIssue(&report, store_files::kTree,
               checksummed.status().ToString());
      return report;
    }
    format = checksummed.ValueOrDie() ? PageFormat::kChecksummed
                                      : PageFormat::kRaw;
  }
  ScrubPagedFile(dir, store_files::kTree, options.page_size, format,
                 &report);
  for (const char* idx :
       {store_files::kTagIdx, store_files::kValIdx, store_files::kIdIdx,
        store_files::kPathIdx}) {
    ScrubPagedFile(dir, idx, options.index_page_size, format, &report);
  }
  if (!report.ok()) {
    // Damaged pages would poison the structural passes with noise.
    return report;
  }

  // Pass 2: structural open (magics, versions, page chain, epochs).
  // Read-only: a writable open self-heals damaged index sidecars
  // (rebuild + re-persist), which would erase exactly the evidence the
  // later passes exist to report.  A scrub must never mutate the store.
  options.dir = dir;
  options.read_only = true;
  auto store_or = DocumentStore::OpenDir(options);
  if (!store_or.ok()) {
    AddIssue(&report, "store", store_or.status().ToString());
    return report;
  }
  auto store = std::move(store_or).ValueOrDie();

  // Pass 3: every B+i entry against an independent navigation of the
  // tree string, and its value record against the data file.
  BTreeIterator it = store->id_index()->NewIterator();
  Status s = it.SeekToFirst();
  if (!s.ok()) {
    AddIssue(&report, "B+i", s.ToString());
    return report;
  }
  while (it.Valid()) {
    ++report.entries_checked;
    auto dewey_or = DeweyId::Decode(it.key());
    if (!dewey_or.ok()) {
      AddIssue(&report, "B+i",
               "undecodable Dewey key: " + dewey_or.status().ToString());
    } else {
      const DeweyId dewey = std::move(dewey_or).ValueOrDie();
      auto nav = store->Navigate(dewey);
      if (!nav.ok()) {
        AddIssue(&report, "B+i",
                 "entry for " + dewey.ToString() +
                     " has no matching node in the tree string: " +
                     nav.status().ToString());
      } else {
        uint64_t pos = 0, offset = 0;
        bool has_value = false;
        Status ps = index_keys::ParseIdPayload(it.value(), &pos,
                                               &has_value, &offset);
        if (!ps.ok()) {
          AddIssue(&report, "B+i",
                   "bad payload for " + dewey.ToString() + ": " +
                       ps.ToString());
        } else {
          if (store->positions_fresh() &&
              pos != store->tree()->GlobalPos(nav.ValueOrDie())) {
            AddIssue(&report, "B+i",
                     "stored position " + std::to_string(pos) + " for " +
                         dewey.ToString() + " disagrees with the tree (" +
                         std::to_string(store->tree()->GlobalPos(
                             nav.ValueOrDie())) +
                         ") although positions are marked fresh");
          }
          if (has_value) {
            auto value = store->values()->Read(offset);
            if (!value.ok()) {
              AddIssue(&report, "values.dat",
                       "record for " + dewey.ToString() + ": " +
                           value.status().ToString());
            }
          }
        }
      }
    }
    if (report.issues.size() >= kMaxIssues) {
      report.truncated = true;
      break;
    }
    s = it.Next();
    if (!s.ok()) {
      AddIssue(&report, "B+i", s.ToString());
      break;
    }
  }

  // The node count in the tree meta must agree with the B+i entry count
  // (every node has exactly one entry).
  if (!report.truncated &&
      report.entries_checked != store->tree()->node_count()) {
    AddIssue(&report, "B+i",
             "index holds " + std::to_string(report.entries_checked) +
                 " entries but the tree records " +
                 std::to_string(store->tree()->node_count()) + " nodes");
  }

  // Pass 4: per-page tag summaries.  Recompute every chain page's summary
  // from its body and compare against the summary the store navigates by
  // (loaded from the v3/v4 meta extension or rebuilt on open).  A stale
  // summary cannot cause wrong answers on its own (false positives only
  // slow scans down), but a summary missing a present tag makes
  // NextOpenWithTag skip matches, so a mismatch is real damage.
  StringStore* tree = store->tree();
  if (tree->options().use_tag_summaries) {
    for (size_t i = 0; i < tree->chain_length(); ++i) {
      const PageId page = tree->chain_page(i);
      auto expect = tree->ComputeTagSummary(page);
      if (!expect.ok()) {
        AddIssue(&report, store_files::kTree,
                 "page " + std::to_string(page) +
                     ": cannot recompute tag summary: " +
                     expect.status().ToString());
      } else if (tree->tag_summary(page) != expect.ValueOrDie()) {
        AddIssue(&report, store_files::kTree,
                 "page " + std::to_string(page) + ": stored tag summary " +
                     std::to_string(tree->tag_summary(page)) +
                     " disagrees with the page body (expected " +
                     std::to_string(expect.ValueOrDie()) + ")");
      }
      if (report.issues.size() >= kMaxIssues) {
        report.truncated = true;
        break;
      }
    }
  }

  // Pass 5: the balanced-parentheses sidecar, when one was persisted.
  // LoadFrom validates the envelope (magic, format version, shape,
  // CRC-32C) — a flipped payload byte surfaces here as Corruption.  The
  // CRC only vouches that the bytes match what was written; the compare
  // below checks what was written against the current tree string.
  const std::string bpx_path =
      dir + "/" + store_files::kBpIndex;
  if (FileExists(bpx_path)) {
    auto bpx_file = OpenPosixFile(bpx_path, /*create=*/false);
    if (!bpx_file.ok()) {
      AddIssue(&report, store_files::kBpIndex,
               bpx_file.status().ToString());
      return report;
    }
    auto side_or = BpIndex::LoadFrom(bpx_file.ValueOrDie().get());
    if (!side_or.ok()) {
      AddIssue(&report, store_files::kBpIndex,
               side_or.status().ToString());
      return report;
    }
    const BpIndex& side = *side_or.ValueOrDie();
    // A mismatched-epoch sidecar is stale, not damaged: no open ever
    // trusts it (it is rebuilt from the page chain, exactly as if the
    // file were missing), and a crash between a WAL commit and the
    // next writable open legitimately leaves one behind.  Diffing its
    // content against a different generation would be noise, so the
    // comparison only runs when the epochs agree.
    if (side.epoch() == store->epoch()) {
      auto fresh_or = BpIndex::Build(store->tree(), side.epoch());
      if (!fresh_or.ok()) {
        AddIssue(&report, store_files::kBpIndex,
                 "cannot recompute the bitvector from the page chain: " +
                     fresh_or.status().ToString());
        return report;
      }
      const BpIndex& fresh = *fresh_or.ValueOrDie();
      if (side.node_count() != fresh.node_count()) {
        AddIssue(&report, store_files::kBpIndex,
                 "sidecar holds " + std::to_string(side.node_count()) +
                     " nodes but the tree string holds " +
                     std::to_string(fresh.node_count()));
      } else {
        uint64_t bad_bits = 0;
        for (uint64_t pos = 0; pos < fresh.bit_count(); ++pos) {
          if (side.IsOpen(pos) != fresh.IsOpen(pos)) ++bad_bits;
        }
        uint64_t bad_tags = 0;
        for (uint64_t rank = 0; rank < fresh.node_count(); ++rank) {
          if (side.TagAtRank(rank) != fresh.TagAtRank(rank)) ++bad_tags;
        }
        if (bad_bits != 0 || bad_tags != 0) {
          AddIssue(&report, store_files::kBpIndex,
                   "sidecar disagrees with the tree string: " +
                       std::to_string(bad_bits) + " parenthesis bit(s), " +
                       std::to_string(bad_tags) + " preorder tag(s)");
        }
      }
    }
  }

  // Pass 6: the path-synopsis sidecar, when one was persisted.  Same
  // shape as pass 5: LoadFrom catches envelope damage (magic, version,
  // CRC-32C over the trie records), and when the epochs agree a rebuild
  // from the tree string catches a sidecar whose bytes are internally
  // consistent but no longer describe this document.
  const std::string pds_path = dir + "/" + store_files::kSynopsis;
  if (FileExists(pds_path)) {
    auto pds_file = OpenPosixFile(pds_path, /*create=*/false);
    if (!pds_file.ok()) {
      AddIssue(&report, store_files::kSynopsis,
               pds_file.status().ToString());
      return report;
    }
    auto side_or = PathSynopsis::LoadFrom(pds_file.ValueOrDie().get());
    if (!side_or.ok()) {
      AddIssue(&report, store_files::kSynopsis,
               side_or.status().ToString());
      return report;
    }
    const PathSynopsis& side = *side_or.ValueOrDie();
    // Stale-not-damaged: same policy as pass 5 above.
    if (side.epoch() == store->epoch()) {
      auto fresh_or = PathSynopsis::Build(store->tree(), side.epoch());
      if (!fresh_or.ok()) {
        AddIssue(&report, store_files::kSynopsis,
                 "cannot recompute the path trie from the page chain: " +
                     fresh_or.status().ToString());
        return report;
      }
      const PathSynopsis& fresh = *fresh_or.ValueOrDie();
      if (side.path_count() != fresh.path_count()) {
        AddIssue(&report, store_files::kSynopsis,
                 "sidecar holds " + std::to_string(side.path_count()) +
                     " distinct paths but the tree string holds " +
                     std::to_string(fresh.path_count()));
      } else {
        uint64_t bad_paths = 0;
        for (uint32_t i = 0; i < fresh.path_count(); ++i) {
          if (side.node(i).tag != fresh.node(i).tag ||
              side.node(i).count != fresh.node(i).count ||
              side.node(i).parent != fresh.node(i).parent) {
            ++bad_paths;
          }
        }
        if (bad_paths != 0) {
          AddIssue(&report, store_files::kSynopsis,
                   "sidecar disagrees with the tree string on " +
                       std::to_string(bad_paths) + " path record(s)");
        }
      }
    }
  }
  return report;
}

}  // namespace nok
