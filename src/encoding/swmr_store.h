// Single-writer / multi-reader serving of one store directory.
//
// SwmrStore owns a WAL-mode writer DocumentStore and publishes an
// immutable Snapshot after every commit.  Readers grab the current
// snapshot (a shared_ptr copy under a mutex — never blocked by the
// writer) and query it with their own QueryEngine; the snapshot's
// component files are SnapshotFile wrappers (storage/page_versions.h)
// pinned to the committed epoch, so a reader mid-query keeps seeing
// exactly that epoch while the writer applies later commits in place:
//
//   writer commit of epoch N:
//     1. WAL fsync (durability point; base files untouched so far)
//     2. for every base range about to change, retain the pre-image
//        tagged valid-through N-1     <- what live snapshots keep reading
//     3. apply + sync base files, checkpoint
//     4. open a fresh snapshot of epoch N, swap it in as current
//   reader holding a snapshot at E < N:
//     base read, then overlay retained versions visible at E — never a
//     torn page, never a mix of epochs
//   reclamation:
//     when the oldest snapshot drains (its shared_ptr count hits zero),
//     every pre-image only it could read is dropped (epoch-based
//     reclamation, SnapshotTracker)
//
// Plan caching across reader threads lives one layer up: share one
// nok::SharedPlanCache among the readers' QueryEngines
// (set_shared_plan_cache).  Keys carry the snapshot epoch, so a commit
// invalidates by key change, not by broadcast.
//
// Thread safety: all writer methods (InsertSubtree/DeleteSubtree/
// RefreshPositions/Commit) must be called from one thread at a time;
// snapshot() and stats() are safe from any thread.

#ifndef NOKXML_ENCODING_SWMR_STORE_H_
#define NOKXML_ENCODING_SWMR_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "encoding/document_store.h"
#include "storage/page_versions.h"

namespace nok {

class SwmrStore {
 public:
  struct Options {
    /// Base knobs for both the writer and the snapshots (page sizes,
    /// pool sizes, ...).  dir/read_only/wal/file_factory are overridden.
    DocumentStoreOptions store;
    /// Auto-commit after this many update ops (0 = explicit Commit only).
    /// Note group commits publish snapshots only on explicit Commit.
    uint64_t group_commit_ops = 0;
  };

  /// One committed generation, safe for concurrent readers.  Hold the
  /// shared_ptr for the duration of a query; dropping the last reference
  /// lets the store reclaim the generation's shadow pages.
  class Snapshot {
   public:
    DocumentStore* store() const { return store_.get(); }
    uint64_t epoch() const { return epoch_; }

   private:
    friend class SwmrStore;
    Snapshot(std::unique_ptr<DocumentStore> store, uint64_t epoch)
        : store_(std::move(store)), epoch_(epoch) {}

    std::unique_ptr<DocumentStore> store_;
    uint64_t epoch_;
  };

  struct Stats {
    uint64_t commits = 0;
    uint64_t snapshots_published = 0;
    uint64_t retained_entries = 0;  ///< live shadow pre-images
    uint64_t retained_bytes = 0;
    uint64_t min_active_epoch = 0;
    uint64_t current_epoch = 0;
  };

  /// Opens (and if needed recovers) the store directory for
  /// single-writer / multi-reader serving and publishes the initial
  /// snapshot.
  static Result<std::unique_ptr<SwmrStore>> Open(const std::string& dir,
                                                 Options options);
  static Result<std::unique_ptr<SwmrStore>> Open(const std::string& dir) {
    return Open(dir, Options());
  }

  // -- writer side (one thread) -----------------------------------------
  Status InsertSubtree(const DeweyId& parent, uint32_t child_index,
                       const std::string& xml_fragment);
  Status DeleteSubtree(const DeweyId& node);
  Status RefreshPositions();

  /// Commits the captured update batch (WAL fsync, apply, checkpoint)
  /// and publishes a snapshot of the new epoch.  Readers already holding
  /// the previous snapshot are unaffected.
  Status Commit();

  /// The writer handle (single-thread use only; e.g. for stats).
  DocumentStore* writer() { return writer_.get(); }
  uint64_t epoch() const { return writer_->epoch(); }

  // -- reader side (any thread) -----------------------------------------
  /// The current committed snapshot.  Never null after Open succeeds.
  std::shared_ptr<Snapshot> snapshot() const EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);

 private:
  explicit SwmrStore(Options options) : options_(std::move(options)) {}

  Result<std::unique_ptr<DocumentStore>> OpenSnapshotStore(uint64_t epoch);
  Status PublishSnapshot() EXCLUDES(mu_);

  // The members below are written once inside Open() before the store
  // is reachable from any other thread, then only read — no mutex
  // needed (the retain hook and snapshot file factories read them from
  // reader threads).
  Options options_;   // NOK008-OK: immutable after Open()
  std::string dir_;   // NOK008-OK: immutable after Open()
  std::unique_ptr<DocumentStore> writer_;  // NOK008-OK: set in Open();
  // writer methods are single-thread by contract (see file comment).
  std::shared_ptr<SnapshotTracker> tracker_;  // NOK008-OK: immutable
  // after Open(); SnapshotTracker is internally synchronized.
  /// Component name -> shadow-page store consulted by its snapshots.
  /// NOK008-OK: the map is immutable after Open(); the pointed-to
  /// PageVersionStores are internally synchronized.
  std::map<std::string, std::shared_ptr<PageVersionStore>> versions_;

  /// Guards the published snapshot and the commit counters.  Note the
  /// swap in PublishSnapshot can run the previous snapshot's deleter
  /// while holding mu_, which takes SnapshotTracker::mu_ — lock order
  /// SwmrStore::mu_ before SnapshotTracker::mu_ (DESIGN.md section 12).
  mutable Mutex mu_;
  std::shared_ptr<Snapshot> current_ GUARDED_BY(mu_);
  uint64_t commits_ GUARDED_BY(mu_) = 0;
  uint64_t snapshots_published_ GUARDED_BY(mu_) = 0;
};

}  // namespace nok

#endif  // NOKXML_ENCODING_SWMR_STORE_H_
