// Per-page tag-presence summaries (the format v3/v4 meta extension).
//
// The (st,lo,hi) page header lets FOLLOWING-SIBLING skip pages by *level*
// only; a scan for a rare tag still materializes every page whose level
// range overlaps.  Each data page therefore also carries a 64-bit word
// summarizing the set of open-symbol tags occurring in it:
//
//   * TagId <= 64: an exact bitmap -- bit (tag - 1) -- so membership
//     answers are precise for small dictionaries (all five Table 1
//     datasets fit);
//   * TagId  > 64: the id degrades gracefully into a two-probe Bloom
//     filter over the same 64 bits.
//
// Either way there are no false negatives: a tag-filtered scan may only
// over-read, never skip a page it needed.  The words live in the meta
// page when they fit and are rebuilt from page bodies on open otherwise,
// so v1/v2 files keep working unchanged.

#ifndef NOKXML_ENCODING_TAG_SUMMARY_H_
#define NOKXML_ENCODING_TAG_SUMMARY_H_

#include <cstdint>

#include "encoding/tag_dictionary.h"

namespace nok {

/// Tag ids up to this value map to a single exact bitmap bit.
inline constexpr uint32_t kTagSummaryExactBits = 64;

/// The summary bits contributed by one open symbol with the given tag.
/// kInvalidTag contributes nothing (and tests as "may contain" below, the
/// safe direction for an unknown tag).
inline constexpr uint64_t TagSummaryBits(TagId tag) {
  if (tag == kInvalidTag) return 0;
  if (tag <= kTagSummaryExactBits) {
    return uint64_t{1} << (tag - 1);
  }
  // Fibonacci mixing spreads the sequentially interned ids; two probes
  // keep the false-positive rate modest even for dictionaries well past
  // 64 tags.
  const uint64_t h = static_cast<uint64_t>(tag) * 0x9E3779B97F4A7C15ull;
  return (uint64_t{1} << (h & 63)) | (uint64_t{1} << ((h >> 6) & 63));
}

/// Whether a page whose summary is `summary` may contain an open symbol
/// with `tag`.  False means certainly absent (the page can be skipped).
inline constexpr bool SummaryMayContain(uint64_t summary, TagId tag) {
  const uint64_t bits = TagSummaryBits(tag);
  return (summary & bits) == bits;
}

}  // namespace nok

#endif  // NOKXML_ENCODING_TAG_SUMMARY_H_
