#include "encoding/path_synopsis.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/coding.h"
#include "common/hash.h"
#include "common/slice.h"
#include "encoding/string_store.h"

namespace nok {
namespace {

constexpr uint64_t kSynopsisMagic = 0x4e4f4b5053594e50ull;  // "NOKPSYNP"
constexpr uint32_t kSynopsisFormatVersion = 1;
constexpr size_t kSynopsisHeaderSize = 32;
constexpr size_t kSynopsisRecordSize = 2 + 8 + 4;  // tag, count, parent+1.
// A trie can never have more nodes than the document, but a corrupt
// sidecar can claim anything; cap before allocating.
constexpr uint32_t kMaxPaths = 1u << 28;

}  // namespace

void PathSynopsis::Builder::Open(TagId tag) {
  ++opens_;
  const uint32_t level =
      static_cast<uint32_t>(stack_.size()) + 1;
  std::vector<uint32_t>* siblings =
      stack_.empty() ? &roots_ : &trie_[stack_.back()].children;
  uint32_t found = ~uint32_t{0};
  for (const uint32_t c : *siblings) {
    if (trie_[c].tag == tag) {
      found = c;
      break;
    }
  }
  if (found == ~uint32_t{0}) {
    found = static_cast<uint32_t>(trie_.size());
    TrieNode node;
    node.tag = tag;
    node.level = level;
    trie_.push_back(std::move(node));
    // `siblings` may dangle after the push; re-derive it.
    (stack_.empty() ? roots_ : trie_[stack_.back()].children)
        .push_back(found);
  }
  ++trie_[found].count;
  stack_.push_back(found);
}

void PathSynopsis::Builder::Close() {
  if (stack_.empty()) {
    unbalanced_ = true;
    return;
  }
  stack_.pop_back();
}

Result<std::unique_ptr<PathSynopsis>> PathSynopsis::Builder::Finish(
    uint64_t epoch) {
  if (unbalanced_ || !stack_.empty()) {
    return Status::Corruption("path synopsis: unbalanced open/close events");
  }
  auto synopsis = std::unique_ptr<PathSynopsis>(new PathSynopsis());
  synopsis->epoch_ = epoch;
  synopsis->node_count_ = opens_;
  synopsis->nodes_.reserve(trie_.size());
  // Flatten the trie to preorder with an explicit stack (document depth
  // is unbounded; the `parts` generator recurses deep).
  struct Frame {
    uint32_t trie;
    uint32_t out;
    size_t next_child;
  };
  std::vector<Frame> frames;
  const auto emit = [&](uint32_t t, int32_t parent) {
    PathNode node;
    node.tag = trie_[t].tag;
    node.count = trie_[t].count;
    node.level = trie_[t].level;
    node.parent = parent;
    synopsis->nodes_.push_back(node);
    return static_cast<uint32_t>(synopsis->nodes_.size() - 1);
  };
  for (const uint32_t root : roots_) {
    frames.push_back({root, emit(root, -1), 0});
    while (!frames.empty()) {
      const Frame top = frames.back();
      const std::vector<uint32_t>& kids = trie_[top.trie].children;
      if (top.next_child < kids.size()) {
        ++frames.back().next_child;
        const uint32_t child = kids[top.next_child];
        frames.push_back(
            {child, emit(child, static_cast<int32_t>(top.out)), 0});
      } else {
        synopsis->nodes_[top.out].subtree_end =
            static_cast<uint32_t>(synopsis->nodes_.size());
        frames.pop_back();
      }
    }
  }
  NOK_RETURN_IF_ERROR(synopsis->Validate());
  return synopsis;
}

Result<std::unique_ptr<PathSynopsis>> PathSynopsis::Build(StringStore* tree,
                                                          uint64_t epoch) {
  Builder builder;
  uint64_t symbols = 0;
  NOK_RETURN_IF_ERROR(tree->VisitSymbols([&](bool is_open, TagId tag) {
    if (is_open) {
      builder.Open(tag);
    } else {
      builder.Close();
    }
    ++symbols;
  }));
  if (symbols != 2 * tree->node_count()) {
    return Status::Corruption(
        "path synopsis: page chain disagrees with the meta node count (" +
        std::to_string(symbols) + " symbols, expected " +
        std::to_string(2 * tree->node_count()) + ")");
  }
  return builder.Finish(epoch);
}

Status PathSynopsis::Validate() {
  // Recompute levels and subtree spans from the parent links while
  // checking that the node order really is a preorder forest: a node's
  // parent must be on the currently-open ancestor chain.
  std::vector<uint32_t> open;
  uint64_t total = 0;
  min_level_ = 0;
  max_level_ = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    PathNode& node = nodes_[i];
    if (node.tag == kInvalidTag) {
      return Status::Corruption("path synopsis: invalid tag at path node " +
                                std::to_string(i));
    }
    if (node.count == 0) {
      return Status::Corruption("path synopsis: zero count at path node " +
                                std::to_string(i));
    }
    const int32_t parent = node.parent;
    if (parent >= static_cast<int32_t>(i)) {
      return Status::Corruption("path synopsis: parent not before child");
    }
    while (!open.empty() &&
           (parent < 0 ||
            open.back() != static_cast<uint32_t>(parent))) {
      nodes_[open.back()].subtree_end = static_cast<uint32_t>(i);
      open.pop_back();
    }
    if (parent >= 0 &&
        (open.empty() || open.back() != static_cast<uint32_t>(parent))) {
      return Status::Corruption("path synopsis: parent not an open ancestor");
    }
    node.level = parent < 0 ? 1 : nodes_[static_cast<size_t>(parent)].level + 1;
    if (min_level_ == 0 || node.level < min_level_) min_level_ = node.level;
    if (node.level > max_level_) max_level_ = node.level;
    total += node.count;
    open.push_back(static_cast<uint32_t>(i));
  }
  while (!open.empty()) {
    nodes_[open.back()].subtree_end = static_cast<uint32_t>(nodes_.size());
    open.pop_back();
  }
  if (total != node_count_) {
    return Status::Corruption(
        "path synopsis: path counts sum to " + std::to_string(total) +
        ", expected " + std::to_string(node_count_) + " nodes");
  }
  return Status::OK();
}

std::string PathSynopsis::Serialize() const {
  std::string payload;
  payload.reserve(4 + nodes_.size() * kSynopsisRecordSize);
  PutFixed32(&payload, static_cast<uint32_t>(nodes_.size()));
  for (const PathNode& node : nodes_) {
    PutFixed16(&payload, node.tag);
    PutFixed64(&payload, node.count);
    PutFixed32(&payload, static_cast<uint32_t>(node.parent + 1));
  }
  // The CRC covers the epoch and node-count header fields too: a flipped
  // epoch byte would otherwise deserialize cleanly and masquerade as a
  // (stale or, worse, current) generation stamp.
  std::string stamped;
  PutFixed64(&stamped, epoch_);
  PutFixed64(&stamped, node_count_);
  uint32_t crc = Crc32c(Slice(stamped));
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  std::string out;
  out.reserve(kSynopsisHeaderSize + payload.size());
  PutFixed64(&out, kSynopsisMagic);
  PutFixed32(&out, kSynopsisFormatVersion);
  out += stamped;
  PutFixed32(&out, crc);
  out += payload;
  return out;
}

Result<std::unique_ptr<PathSynopsis>> PathSynopsis::Deserialize(
    std::string_view bytes) {
  if (bytes.size() < kSynopsisHeaderSize + 4) {
    return Status::Corruption("synopsis sidecar: truncated header");
  }
  const char* p = bytes.data();
  if (DecodeFixed64(p) != kSynopsisMagic) {
    return Status::Corruption("synopsis sidecar: bad magic");
  }
  const uint32_t version = DecodeFixed32(p + 8);
  if (version != kSynopsisFormatVersion) {
    return Status::Corruption(
        "synopsis sidecar: unsupported format version " +
        std::to_string(version));
  }
  auto synopsis = std::unique_ptr<PathSynopsis>(new PathSynopsis());
  synopsis->epoch_ = DecodeFixed64(p + 12);
  synopsis->node_count_ = DecodeFixed64(p + 20);
  const uint32_t crc = DecodeFixed32(p + 28);
  const char* payload = p + kSynopsisHeaderSize;
  const uint32_t path_count = DecodeFixed32(payload);
  if (path_count > kMaxPaths) {
    return Status::Corruption("synopsis sidecar: implausible path count");
  }
  const size_t payload_size =
      4 + static_cast<size_t>(path_count) * kSynopsisRecordSize;
  if (bytes.size() != kSynopsisHeaderSize + payload_size) {
    return Status::Corruption("synopsis sidecar: payload size mismatch");
  }
  uint32_t want_crc = Crc32c(Slice(p + 12, 16));  // epoch + node count.
  want_crc = Crc32cExtend(want_crc, payload, payload_size);
  if (want_crc != crc) {
    return Status::Corruption("synopsis sidecar: payload checksum mismatch");
  }
  synopsis->nodes_.resize(path_count);
  for (size_t i = 0; i < path_count; ++i) {
    const char* rec = payload + 4 + i * kSynopsisRecordSize;
    PathNode& node = synopsis->nodes_[i];
    node.tag = DecodeFixed16(rec);
    node.count = DecodeFixed64(rec + 2);
    const uint32_t parent_plus_1 = DecodeFixed32(rec + 10);
    if (parent_plus_1 > path_count) {
      return Status::Corruption("synopsis sidecar: parent out of range");
    }
    node.parent = static_cast<int32_t>(parent_plus_1) - 1;
  }
  NOK_RETURN_IF_ERROR(synopsis->Validate());
  return synopsis;
}

Status PathSynopsis::SaveTo(File* file) const {
  const std::string bytes = Serialize();
  NOK_RETURN_IF_ERROR(file->Truncate(0));
  NOK_RETURN_IF_ERROR(file->WriteAt(0, Slice(bytes)));
  return file->Sync();
}

Result<std::unique_ptr<PathSynopsis>> PathSynopsis::LoadFrom(File* file) {
  const uint64_t size = file->Size();
  std::string bytes(static_cast<size_t>(size), '\0');
  Slice out;
  NOK_RETURN_IF_ERROR(
      file->ReadAt(0, static_cast<size_t>(size), bytes.data(), &out));
  return Deserialize(out.ToStringView());
}

void PathSynopsis::CollectChildren(uint32_t parent, TagId tag, bool wildcard,
                                   std::vector<uint32_t>* out) const {
  uint32_t j = parent == kVirtualRoot ? 0 : parent + 1;
  const uint32_t end = parent == kVirtualRoot
                           ? static_cast<uint32_t>(nodes_.size())
                           : nodes_[parent].subtree_end;
  while (j < end) {
    if (wildcard || nodes_[j].tag == tag) out->push_back(j);
    j = nodes_[j].subtree_end;
  }
}

void PathSynopsis::CollectDescendants(uint32_t parent, TagId tag,
                                      bool wildcard,
                                      std::vector<uint32_t>* out) const {
  const uint32_t begin = parent == kVirtualRoot ? 0 : parent + 1;
  const uint32_t end = parent == kVirtualRoot
                           ? static_cast<uint32_t>(nodes_.size())
                           : nodes_[parent].subtree_end;
  for (uint32_t j = begin; j < end; ++j) {
    if (wildcard || nodes_[j].tag == tag) out->push_back(j);
  }
}

uint64_t PathSynopsis::TotalCount(const std::vector<uint32_t>& set) const {
  uint64_t total = 0;
  for (const uint32_t i : set) {
    total += i == kVirtualRoot ? 1 : nodes_[i].count;
  }
  return total;
}

}  // namespace nok
