#include "encoding/string_store.h"

#include <cstring>
#include <limits>

#include "common/coding.h"
#include "common/logging.h"
#include "encoding/tag_summary.h"

namespace nok {

namespace {

constexpr uint64_t kMagic = 0x4e4f4b5354524545ull;  // "NOKSTREE"
constexpr uint32_t kPageHeaderSize = kStorePageHeaderSize;
constexpr PageId kMetaPage = 0;

// Meta page field offsets.
constexpr size_t kMetaMagic = 0;
constexpr size_t kMetaPageSize = 8;
constexpr size_t kMetaNodeCount = 12;
constexpr size_t kMetaMaxLevel = 20;
constexpr size_t kMetaFirstData = 24;
constexpr size_t kMetaFreeList = 28;
// Version 0 is the pre-versioning layout (raw pages, epoch 0); 1 is raw
// with version/epoch fields; 2 is checksummed; 3/4 are 1/2 plus the tag-
// summary meta extension below.  Data pages are byte-identical between 1
// and 3 (and between 2 and 4): the summaries live only in the meta page.
constexpr size_t kMetaVersion = 32;
constexpr size_t kMetaEpoch = 36;
// Tag-summary extension (format v3/v4): a fixed32 count of persisted
// per-page words, then count fixed64 summaries for PageId 1..count.
// Count is 0 when the words do not fit in the meta page; openers rebuild
// them from page bodies in that case.
constexpr size_t kMetaSummaryCount = 44;
constexpr size_t kMetaSummaryBase = 48;
constexpr uint32_t kFormatVersionRaw = 1;
constexpr uint32_t kFormatVersionChecksummed = 2;
constexpr uint32_t kFormatVersionRawTagged = 3;
constexpr uint32_t kFormatVersionChecksummedTagged = 4;

PageFormat FormatFor(const StringStoreOptions& options) {
  return options.checksum_pages ? PageFormat::kChecksummed
                                : PageFormat::kRaw;
}

uint32_t FormatVersionFor(const StringStoreOptions& options) {
  if (options.use_tag_summaries) {
    return options.checksum_pages ? kFormatVersionChecksummedTagged
                                  : kFormatVersionRawTagged;
  }
  return options.checksum_pages ? kFormatVersionChecksummed
                                : kFormatVersionRaw;
}

/// Writes the tag-summary extension into a meta-page buffer: the words
/// for PageId 1..count when they fit, a zero count otherwise.
void EncodeSummaryExtension(char* meta, uint32_t page_size,
                            const uint64_t* words, size_t count) {
  if (count == 0 || kMetaSummaryBase + 8 * count > page_size) {
    EncodeFixed32(meta + kMetaSummaryCount, 0);
    return;
  }
  EncodeFixed32(meta + kMetaSummaryCount, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    EncodeFixed64(meta + kMetaSummaryBase + 8 * i, words[i]);
  }
}

/// Accumulates the tag summary of one page body by decoding its symbols.
Result<uint64_t> SummaryFromBody(const char* body, uint16_t used,
                                 PageId page) {
  uint64_t bits = 0;
  uint16_t off = 0;
  while (off < used) {
    const unsigned char b = static_cast<unsigned char>(body[off]);
    if (b & 0x80) {
      if (off + 1 >= used) {
        return Status::Corruption("truncated open symbol in page " +
                                  std::to_string(page));
      }
      const TagId tag = static_cast<TagId>(
          ((b & 0x7f) << 8) | static_cast<unsigned char>(body[off + 1]));
      bits |= TagSummaryBits(tag);
      off = static_cast<uint16_t>(off + 2);
    } else if (b == 0) {
      off = static_cast<uint16_t>(off + 1);
    } else {
      return Status::Corruption("bad symbol byte in page " +
                                std::to_string(page));
    }
  }
  return bits;
}

}  // namespace

void EncodeStorePageHeader(char* buf, const StorePageHeader& h) {
  EncodeFixed16(buf + 0, static_cast<uint16_t>(h.st));
  EncodeFixed16(buf + 2, static_cast<uint16_t>(h.lo));
  EncodeFixed16(buf + 4, static_cast<uint16_t>(h.hi));
  EncodeFixed16(buf + 6, h.used);
  EncodeFixed32(buf + 8, h.next);
}

StorePageHeader DecodeStorePageHeader(const char* buf) {
  StorePageHeader h;
  h.st = static_cast<int16_t>(DecodeFixed16(buf + 0));
  h.lo = static_cast<int16_t>(DecodeFixed16(buf + 2));
  h.hi = static_cast<int16_t>(DecodeFixed16(buf + 4));
  h.used = DecodeFixed16(buf + 6);
  h.next = DecodeFixed32(buf + 8);
  return h;
}

// ---------------------------------------------------------------------------
// Builder.

StringStore::Builder::Builder(std::unique_ptr<File> file, Options options)
    : options_(options) {
  const uint32_t reserve =
      static_cast<uint32_t>(options_.page_size * options_.reserve_ratio);
  NOK_CHECK(options_.page_size > kPageHeaderSize + reserve + 4)
      << "page size too small for the reserve ratio";
  fill_limit_ = options_.page_size - kPageHeaderSize - reserve;

  // I/O failures here (a non-empty file, a failed page write) are deferred
  // into init_status_ so the first Open()/Close()/Finish() reports them.
  auto pager = Pager::Open(std::move(file), options.page_size,
                           FormatFor(options));
  if (!pager.ok()) {
    init_status_ = pager.status();
    return;
  }
  pager_ = std::move(pager).ValueOrDie();
  if (pager_->page_count() != 0) {
    init_status_ =
        Status::InvalidArgument("builder requires an empty file");
    return;
  }
  PageId meta = kInvalidPage;
  init_status_ = pager_->AllocatePage(&meta);
  if (!init_status_.ok()) return;
  NOK_CHECK(meta == kMetaPage);
  init_status_ = pager_->AllocatePage(&cur_page_);
  if (!init_status_.ok()) return;
  page_buf_.assign(options_.page_size, '\0');
}

StringStore::Builder::~Builder() = default;

Status StringStore::Builder::FlushPage(PageId next) {
  StorePageHeader h;
  h.st = st_;
  h.lo = page_has_symbols_ ? lo_ : static_cast<int16_t>(0);
  h.hi = page_has_symbols_ ? hi_ : static_cast<int16_t>(0);
  h.used = used_bytes_;
  h.next = next;
  EncodeStorePageHeader(page_buf_.data(), h);
  NOK_RETURN_IF_ERROR(pager_->WritePage(cur_page_, page_buf_.data()));
  // The bulk build lays pages out sequentially, so chain order equals
  // PageId order and this vector lines up with PageId 1..n.
  summaries_.push_back(cur_tag_bits_);
  return Status::OK();
}

Status StringStore::Builder::AppendSymbol(const char* bytes, uint32_t n,
                                          int new_level) {
  if (used_bytes_ + n > fill_limit_) {
    // Start a new page; during the bulk build pages are sequential.
    PageId next = kInvalidPage;
    NOK_RETURN_IF_ERROR(pager_->AllocatePage(&next));
    NOK_RETURN_IF_ERROR(FlushPage(next));
    cur_page_ = next;
    ++chain_seq_;
    page_buf_.assign(options_.page_size, '\0');
    used_bytes_ = 0;
    syms_in_page_ = 0;
    page_has_symbols_ = false;
    cur_tag_bits_ = 0;
    // st is the level of the last symbol of the PREVIOUS page, i.e. the
    // running level before the pending symbol: one below new_level for an
    // open (n == 2), one above for a close.
    st_ = static_cast<int16_t>(n == 2 ? new_level - 1 : new_level + 1);
  }
  memcpy(page_buf_.data() + kPageHeaderSize + used_bytes_, bytes, n);
  used_bytes_ = static_cast<uint16_t>(used_bytes_ + n);
  ++syms_in_page_;
  if (!page_has_symbols_) {
    lo_ = hi_ = static_cast<int16_t>(new_level);
    page_has_symbols_ = true;
  } else {
    lo_ = std::min<int16_t>(lo_, static_cast<int16_t>(new_level));
    hi_ = std::max<int16_t>(hi_, static_cast<int16_t>(new_level));
  }
  return Status::OK();
}

Status StringStore::Builder::Open(TagId tag, uint64_t* global_pos) {
  NOK_RETURN_IF_ERROR(init_status_);
  if (finished_) return Status::Internal("builder already finished");
  if (tag == kInvalidTag || tag > kMaxTagId) {
    return Status::InvalidArgument("bad tag id " + std::to_string(tag));
  }
  if (level_ == 0 && node_count_ > 0) {
    return Status::InvalidArgument("document has multiple roots");
  }
  char bytes[2];
  bytes[0] = static_cast<char>(0x80 | (tag >> 8));
  bytes[1] = static_cast<char>(tag & 0xff);
  // AppendSymbol handles the page break itself; compute the position the
  // symbol will land at (first slot of the next page if it breaks).
  const bool breaks = static_cast<uint32_t>(used_bytes_) + 2 > fill_limit_;
  const uint64_t pos =
      (breaks ? (chain_seq_ + 1) * options_.page_size
              : chain_seq_ * options_.page_size + syms_in_page_);
  ++level_;
  if (level_ > max_level_) max_level_ = level_;
  NOK_RETURN_IF_ERROR(AppendSymbol(bytes, 2, level_));
  cur_tag_bits_ |= TagSummaryBits(tag);  // After any page break.
  ++node_count_;
  if (global_pos != nullptr) *global_pos = pos;
  return Status::OK();
}

Status StringStore::Builder::Close() {
  NOK_RETURN_IF_ERROR(init_status_);
  if (finished_) return Status::Internal("builder already finished");
  if (level_ <= 0) {
    return Status::InvalidArgument("close with no open element");
  }
  const char close_byte = '\0';
  --level_;
  NOK_RETURN_IF_ERROR(AppendSymbol(&close_byte, 1, level_));
  return Status::OK();
}

Result<std::unique_ptr<StringStore>> StringStore::Builder::Finish(
    uint64_t epoch) {
  NOK_RETURN_IF_ERROR(init_status_);
  if (finished_) return Status::Internal("builder already finished");
  if (level_ != 0) {
    return Status::InvalidArgument("unbalanced document: level " +
                                   std::to_string(level_) + " at finish");
  }
  if (node_count_ == 0) {
    return Status::InvalidArgument("empty document");
  }
  NOK_RETURN_IF_ERROR(FlushPage(kInvalidPage));
  // Data pages must be durable before the meta page declares them valid:
  // the meta is the commit record of the build.
  NOK_RETURN_IF_ERROR(pager_->Sync());

  // Meta page.
  std::string meta(options_.page_size, '\0');
  EncodeFixed64(meta.data() + kMetaMagic, kMagic);
  EncodeFixed32(meta.data() + kMetaPageSize, options_.page_size);
  EncodeFixed64(meta.data() + kMetaNodeCount, node_count_);
  EncodeFixed32(meta.data() + kMetaMaxLevel,
                static_cast<uint32_t>(max_level_));
  EncodeFixed32(meta.data() + kMetaFirstData, 1);
  EncodeFixed32(meta.data() + kMetaFreeList, kInvalidPage);
  EncodeFixed32(meta.data() + kMetaVersion, FormatVersionFor(options_));
  EncodeFixed64(meta.data() + kMetaEpoch, epoch);
  if (options_.use_tag_summaries) {
    EncodeSummaryExtension(meta.data(), options_.page_size,
                           summaries_.data(), summaries_.size());
  }
  NOK_RETURN_IF_ERROR(pager_->WritePage(kMetaPage, meta.data()));
  NOK_RETURN_IF_ERROR(pager_->Sync());
  finished_ = true;

  std::unique_ptr<File> file = pager_->ReleaseFile();
  pager_.reset();
  return StringStore::Open(std::move(file), options_);
}

// ---------------------------------------------------------------------------
// Reader.

Result<std::unique_ptr<StringStore>> StringStore::Open(
    std::unique_ptr<File> file, Options options) {
  std::unique_ptr<StringStore> store(new StringStore(options));
  NOK_RETURN_IF_ERROR(store->Init(std::move(file)));
  return store;
}

Status StringStore::Init(std::unique_ptr<File> file) {
  NOK_ASSIGN_OR_RETURN(pager_,
                       Pager::Open(std::move(file), options_.page_size,
                                   FormatFor(options_)));
  pool_ = std::make_unique<BufferPool>(pager_.get(), options_.pool_frames,
                                       options_.pool_shards);

  if (pager_->page_count() == 0) {
    return Status::Corruption("string store file has no meta page");
  }
  std::string buf(options_.page_size, '\0');
  NOK_RETURN_IF_ERROR(pager_->ReadPage(kMetaPage, buf.data()));
  if (DecodeFixed64(buf.data() + kMetaMagic) != kMagic) {
    return Status::Corruption("bad string store magic");
  }
  if (DecodeFixed32(buf.data() + kMetaPageSize) != options_.page_size) {
    return Status::InvalidArgument(
        "page size mismatch: stored " +
        std::to_string(DecodeFixed32(buf.data() + kMetaPageSize)));
  }
  const uint32_t version = DecodeFixed32(buf.data() + kMetaVersion);
  if (version > kFormatVersionChecksummedTagged) {
    return Status::Corruption("unknown string store format version " +
                              std::to_string(version));
  }
  const bool checksummed_version =
      version == kFormatVersionChecksummed ||
      version == kFormatVersionChecksummedTagged;
  if (version != 0 && checksummed_version != options_.checksum_pages) {
    return Status::Corruption("string store format version " +
                              std::to_string(version) +
                              " does not match the requested page format");
  }
  node_count_ = DecodeFixed64(buf.data() + kMetaNodeCount);
  max_level_ = static_cast<int>(DecodeFixed32(buf.data() + kMetaMaxLevel));
  first_data_page_ = DecodeFixed32(buf.data() + kMetaFirstData);
  free_list_head_ = DecodeFixed32(buf.data() + kMetaFreeList);
  epoch_ = DecodeFixed64(buf.data() + kMetaEpoch);

  // Tagged formats may carry the per-page tag summaries in the meta page;
  // anything else (v1/v2 files, or summaries that did not fit) is rebuilt
  // from the page bodies in ReloadHeaders.
  summaries_persisted_ = false;
  const bool tagged = version == kFormatVersionRawTagged ||
                      version == kFormatVersionChecksummedTagged;
  if (tagged && options_.use_tag_summaries) {
    const uint32_t count = DecodeFixed32(buf.data() + kMetaSummaryCount);
    const PageId n = pager_->page_count();
    if (count > 0 && count == n - 1 &&
        kMetaSummaryBase + 8ull * count <= options_.page_size) {
      tag_summaries_.assign(n, 0);
      for (uint32_t i = 0; i < count; ++i) {
        tag_summaries_[i + 1] =
            DecodeFixed64(buf.data() + kMetaSummaryBase + 8 * i);
      }
      summaries_persisted_ = true;
    }
  }
  return ReloadHeaders();
}

StringStore::~StringStore() {
  if (pager_ == nullptr) return;
  Status s = Flush();
  if (!s.ok()) {
    NOK_LOG(Error) << "StringStore flush on destruction failed: "
                   << s.ToString();
  }
}

Status StringStore::Flush() {
  // A read-only store has nothing dirty by construction, and its file
  // rejects writes; skip the flush machinery entirely so destruction of a
  // shared reader handle stays I/O-free.
  if (options_.read_only) return Status::OK();
  NOK_RETURN_IF_ERROR(pool_->FlushAll());
  NOK_RETURN_IF_ERROR(pager_->Sync());
  if (meta_dirty_) {
    NOK_RETURN_IF_ERROR(WriteMetaPage());
    NOK_RETURN_IF_ERROR(pager_->Sync());
  }
  return Status::OK();
}

Result<bool> StringStore::SniffChecksummed(File* file) {
  char buf[kMetaVersion + 4];
  if (file->Size() < sizeof(buf)) {
    return Status::Corruption("store file too small to hold a meta page");
  }
  Slice unused;
  NOK_RETURN_IF_ERROR(file->ReadAt(0, sizeof(buf), buf, &unused));
  if (DecodeFixed64(buf + kMetaMagic) != kMagic) {
    return Status::Corruption("bad string store magic");
  }
  const uint32_t version = DecodeFixed32(buf + kMetaVersion);
  switch (version) {
    case 0:  // Pre-versioning files are raw.
    case kFormatVersionRaw:
    case kFormatVersionRawTagged:
      return false;
    case kFormatVersionChecksummed:
    case kFormatVersionChecksummedTagged:
      return true;
    default:
      return Status::Corruption("unknown string store format version " +
                                std::to_string(version));
  }
}

Status StringStore::ReloadHeaders() {
  NOK_RETURN_IF_ERROR(pool_->FlushAll());
  const PageId n = pager_->page_count();
  headers_.assign(n, StorePageHeader{});
  // Keep meta-loaded summaries when they line up with the file; rebuild
  // from page bodies otherwise (v1/v2 files, or extension too small).
  const bool rebuild_summaries =
      options_.use_tag_summaries &&
      (!summaries_persisted_ || tag_summaries_.size() != n);
  if (rebuild_summaries || !options_.use_tag_summaries) {
    tag_summaries_.assign(n, 0);
  }
  std::string buf(options_.page_size, '\0');
  const uint16_t max_used =
      static_cast<uint16_t>(options_.page_size - kPageHeaderSize);
  for (PageId p = 1; p < n; ++p) {
    NOK_RETURN_IF_ERROR(pager_->ReadPage(p, buf.data()));
    headers_[p] = DecodeStorePageHeader(buf.data());
    if (headers_[p].used > max_used) {
      return Status::Corruption(
          "page " + std::to_string(p) + " claims " +
          std::to_string(headers_[p].used) +
          " used bytes, more than a page body holds");
    }
    if (rebuild_summaries) {
      NOK_ASSIGN_OR_RETURN(
          tag_summaries_[p],
          SummaryFromBody(buf.data() + kPageHeaderSize, headers_[p].used,
                          p));
    }
  }
  return RebuildChainFromHeaders();
}

Status StringStore::RebuildChainFromHeaders() {
  const size_t n = headers_.size();
  chain_.clear();
  chain_seq_.assign(n, std::numeric_limits<uint64_t>::max());
  PageId p = first_data_page_;
  while (p != kInvalidPage) {
    if (p >= n || chain_seq_[p] != std::numeric_limits<uint64_t>::max()) {
      return Status::Corruption("string store page chain is cyclic or out "
                                "of range at page " +
                                std::to_string(p));
    }
    chain_seq_[p] = chain_.size();
    chain_.push_back(p);
    p = headers_[p].next;
  }
  if (chain_.empty()) {
    return Status::Corruption("string store has an empty page chain");
  }
  return Status::OK();
}

Status StringStore::WriteMetaPage() {
  std::string meta(options_.page_size, '\0');
  EncodeFixed64(meta.data() + kMetaMagic, kMagic);
  EncodeFixed32(meta.data() + kMetaPageSize, options_.page_size);
  EncodeFixed64(meta.data() + kMetaNodeCount, node_count_);
  EncodeFixed32(meta.data() + kMetaMaxLevel,
                static_cast<uint32_t>(max_level_));
  EncodeFixed32(meta.data() + kMetaFirstData, first_data_page_);
  EncodeFixed32(meta.data() + kMetaFreeList, free_list_head_);
  EncodeFixed32(meta.data() + kMetaVersion, FormatVersionFor(options_));
  EncodeFixed64(meta.data() + kMetaEpoch, epoch_);
  if (options_.use_tag_summaries && !tag_summaries_.empty()) {
    EncodeSummaryExtension(meta.data(), options_.page_size,
                           tag_summaries_.data() + 1,
                           tag_summaries_.size() - 1);
  }
  NOK_RETURN_IF_ERROR(pager_->WritePage(kMetaPage, meta.data()));
  meta_dirty_ = false;
  return Status::OK();
}

const StorePageHeader& StringStore::header(PageId page) const {
  NOK_CHECK(page < headers_.size());
  return headers_[page];
}

uint64_t StringStore::tag_summary(PageId page) const {
  NOK_CHECK(page < tag_summaries_.size());
  return tag_summaries_[page];
}

Result<uint64_t> StringStore::ComputeTagSummary(PageId page) {
  if (page == kMetaPage || page >= headers_.size()) {
    return Status::OutOfRange("page id out of range");
  }
  NOK_ASSIGN_OR_RETURN(auto vh, FetchView(page));
  uint64_t bits = 0;
  for (const TagId tag : vh.view->tag) {
    bits |= TagSummaryBits(tag);  // Close symbols contribute nothing.
  }
  return bits;
}

PageId StringStore::NextInChain(PageId page) const {
  NOK_CHECK(page < headers_.size());
  return headers_[page].next;
}

uint64_t StringStore::ChainSeq(PageId page) const {
  NOK_CHECK(page < chain_seq_.size() &&
            chain_seq_[page] != std::numeric_limits<uint64_t>::max())
      << "page " << page << " is not in the chain";
  return chain_seq_[page];
}

uint64_t StringStore::GlobalPos(StorePos pos) const {
  return ChainSeq(pos.page) * options_.page_size + pos.idx;
}

Result<StorePos> StringStore::PosForGlobal(uint64_t global) const {
  const uint64_t seq = global / options_.page_size;
  const uint64_t idx = global % options_.page_size;
  if (seq >= chain_.size()) {
    return Status::OutOfRange("global position beyond the page chain");
  }
  return StorePos{chain_[seq], static_cast<uint16_t>(idx)};
}

Result<StringStore::ViewHandle> StringStore::FetchView(PageId page) {
  NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(page));
  auto view = std::static_pointer_cast<PageView>(handle.decoration());
  if (view == nullptr) {
    view = std::make_shared<PageView>();
    const StorePageHeader& h = headers_[page];
    const char* body = handle.data() + kPageHeaderSize;
    int level = h.st;
    uint16_t off = 0;
    while (off < h.used) {
      const unsigned char b = static_cast<unsigned char>(body[off]);
      view->byte_off.push_back(off);
      if (b & 0x80) {
        if (off + 1 >= h.used) {
          return Status::Corruption("truncated open symbol in page " +
                                    std::to_string(page));
        }
        const TagId tag = static_cast<TagId>(
            ((b & 0x7f) << 8) |
            static_cast<unsigned char>(body[off + 1]));
        ++level;
        view->level.push_back(static_cast<int16_t>(level));
        view->tag.push_back(tag);
        off = static_cast<uint16_t>(off + 2);
      } else if (b == 0) {
        --level;
        view->level.push_back(static_cast<int16_t>(level));
        view->tag.push_back(kInvalidTag);
        off = static_cast<uint16_t>(off + 1);
      } else {
        return Status::Corruption("bad symbol byte in page " +
                                  std::to_string(page));
      }
    }
    handle.set_decoration(view);
  } else {
    nav_decode_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  nav_pages_scanned_.fetch_add(1, std::memory_order_relaxed);
  return ViewHandle{std::move(handle), std::move(view)};
}

StorePos StringStore::RootPos() const {
  NOK_CHECK(!chain_.empty());
  return StorePos{chain_[0], 0};
}

Result<TagId> StringStore::TagAt(StorePos pos) {
  NOK_ASSIGN_OR_RETURN(auto vh, FetchView(pos.page));
  if (pos.idx >= vh.view->size()) {
    return Status::OutOfRange("symbol index out of range");
  }
  const TagId tag = vh.view->tag[pos.idx];
  if (tag == kInvalidTag) {
    return Status::InvalidArgument("position refers to a close symbol");
  }
  return tag;
}

Result<int> StringStore::LevelAt(StorePos pos) {
  NOK_ASSIGN_OR_RETURN(auto vh, FetchView(pos.page));
  if (pos.idx >= vh.view->size()) {
    return Status::OutOfRange("symbol index out of range");
  }
  return static_cast<int>(vh.view->level[pos.idx]);
}

template <typename Pred>
Result<std::optional<StorePos>> StringStore::ScanForward(StorePos pos,
                                                         int skip_level,
                                                         Pred pred,
                                                         TagId filter_tag,
                                                         int tag_stop_level) {
  PageId page = pos.page;
  uint32_t idx = static_cast<uint32_t>(pos.idx) + 1;
  for (;;) {
    const StorePageHeader& h = headers_[page];
    bool can_skip = false;
    if (idx == 0 && h.used > 0) {
      if (options_.use_header_skip && h.lo > skip_level) {
        can_skip = true;
        nav_pages_skipped_.fetch_add(1, std::memory_order_relaxed);
      } else if (filter_tag != kInvalidTag && options_.use_tag_summaries &&
                 h.lo > tag_stop_level &&
                 !SummaryMayContain(tag_summaries_[page], filter_tag)) {
        // The summary proves the tag is absent and the level range proves
        // no stop symbol can occur here either, so pred would return
        // kContinue for the whole page.
        can_skip = true;
        nav_pages_tag_skipped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (can_skip) {
      // Nothing to do: advance to the next page below.
    } else if (h.used > 0) {
      NOK_ASSIGN_OR_RETURN(auto vh, FetchView(page));
      const PageView& view = *vh.view;
      for (uint32_t i = idx; i < view.size(); ++i) {
        switch (pred(static_cast<int>(view.level[i]), view.tag[i])) {
          case ScanAction::kFound:
            return std::optional<StorePos>(
                StorePos{page, static_cast<uint16_t>(i)});
          case ScanAction::kStop:
            return std::optional<StorePos>();
          case ScanAction::kContinue:
            break;
        }
      }
    }
    page = headers_[page].next;
    if (page == kInvalidPage) return std::optional<StorePos>();
    idx = 0;
  }
}

Result<std::optional<StorePos>> StringStore::FirstChild(StorePos pos) {
  int level = 0;
  {
    NOK_ASSIGN_OR_RETURN(auto vh, FetchView(pos.page));
    if (pos.idx >= vh.view->size()) {
      return Status::OutOfRange("symbol index out of range");
    }
    if (vh.view->tag[pos.idx] == kInvalidTag) {
      return Status::InvalidArgument("FirstChild on a close symbol");
    }
    level = vh.view->level[pos.idx];
    // Fast path: next symbol in the same page.
    if (pos.idx + 1u < vh.view->size()) {
      if (vh.view->tag[pos.idx + 1] != kInvalidTag) {
        return std::optional<StorePos>(
            StorePos{pos.page, static_cast<uint16_t>(pos.idx + 1)});
      }
      return std::optional<StorePos>();
    }
  }
  // The next symbol lives in a later page; it is a child iff it is an
  // open symbol one level deeper.
  return ScanForward(pos, /*skip_level=*/std::numeric_limits<int>::max(),
                     [&](int lv, TagId tag) {
                       if (tag != kInvalidTag && lv == level + 1) {
                         return ScanAction::kFound;
                       }
                       return ScanAction::kStop;  // First symbol decides.
                     });
}

Result<std::optional<StorePos>> StringStore::FollowingSibling(StorePos pos) {
  // The paper's formulation (Section 5): first locate this node's own
  // close — the first ')' at level l-1 — skipping every page whose lo
  // exceeds l-1 (pages interior to the subtree, including those holding
  // child closes at level l, can never contain it).  The symbol right
  // after that close is the following sibling, or a close ending the
  // parent.
  NOK_ASSIGN_OR_RETURN(int level, LevelAt(pos));
  NOK_ASSIGN_OR_RETURN(
      auto close_pos,
      ScanForward(pos, /*skip_level=*/level - 1, [&](int lv, TagId tag) {
        if (tag == kInvalidTag && lv == level - 1) {
          return ScanAction::kFound;
        }
        return ScanAction::kContinue;
      }));
  if (!close_pos.has_value()) {
    return Status::Corruption("no matching close symbol");
  }
  // The very next symbol decides.
  return ScanForward(*close_pos,
                     /*skip_level=*/std::numeric_limits<int>::max(),
                     [&](int lv, TagId tag) {
                       if (tag != kInvalidTag && lv == level) {
                         return ScanAction::kFound;
                       }
                       return ScanAction::kStop;
                     });
}

Result<uint64_t> StringStore::SubtreeEndGlobal(StorePos pos) {
  NOK_ASSIGN_OR_RETURN(int level, LevelAt(pos));
  NOK_ASSIGN_OR_RETURN(
      auto close_pos,
      ScanForward(pos, /*skip_level=*/level - 1, [&](int lv, TagId tag) {
        if (tag == kInvalidTag && lv == level - 1) {
          return ScanAction::kFound;
        }
        return ScanAction::kContinue;
      }));
  if (!close_pos.has_value()) {
    return Status::Corruption("no matching close symbol");
  }
  return GlobalPos(*close_pos);
}

Result<std::optional<StorePos>> StringStore::NextOpen(StorePos pos) {
  return ScanForward(pos, /*skip_level=*/std::numeric_limits<int>::max(),
                     [&](int, TagId tag) {
                       return tag != kInvalidTag ? ScanAction::kFound
                                                 : ScanAction::kContinue;
                     });
}

Result<std::optional<StorePos>> StringStore::NextOpenWithTag(StorePos pos,
                                                             TagId tag) {
  if (tag == kInvalidTag) {
    return Status::InvalidArgument("NextOpenWithTag requires a valid tag");
  }
  // skip_level INT_MAX disables the level skip (a full scan has no level
  // bound); pages are pruned purely by their tag summary.  The predicate
  // never stops, so the INT_MIN stop level is sound.
  return ScanForward(
      pos, /*skip_level=*/std::numeric_limits<int>::max(),
      [&](int, TagId t) {
        return t == tag ? ScanAction::kFound : ScanAction::kContinue;
      },
      /*filter_tag=*/tag,
      /*tag_stop_level=*/std::numeric_limits<int>::min());
}

Status StringStore::VisitSymbols(
    const std::function<void(bool, TagId)>& visit) {
  for (const PageId page : chain_) {
    NOK_ASSIGN_OR_RETURN(auto vh, FetchView(page));
    const PageView& view = *vh.view;
    for (size_t i = 0; i < view.size(); ++i) {
      const TagId tag = view.tag[i];
      visit(tag != kInvalidTag, tag);
    }
  }
  return Status::OK();
}

}  // namespace nok
