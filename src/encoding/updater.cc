#include "encoding/updater.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "common/logging.h"
#include "encoding/document_store.h"
#include "encoding/tag_summary.h"
#include "xml/dom.h"

namespace nok {

namespace {

/// Largest byte length <= cap that ends on a symbol boundary.
uint32_t ChunkLen(const char* data, uint32_t len, uint32_t cap) {
  uint32_t off = 0;
  while (off < len) {
    const uint32_t sym =
        (static_cast<unsigned char>(data[off]) & 0x80) ? 2u : 1u;
    if (off + sym > cap) break;
    off += sym;
  }
  return off;
}

}  // namespace

// ---------------------------------------------------------------------------
// TreeUpdater: string-level edits.

void TreeUpdater::AppendOpenSymbol(std::string* out, TagId tag) {
  NOK_CHECK(tag != kInvalidTag && tag <= kMaxTagId);
  out->push_back(static_cast<char>(0x80 | (tag >> 8)));
  out->push_back(static_cast<char>(tag & 0xff));
}

void TreeUpdater::AppendCloseSymbol(std::string* out) {
  out->push_back('\0');
}

Result<uint16_t> TreeUpdater::ByteOffsetOf(StorePos pos,
                                           uint32_t* symbol_bytes) {
  NOK_ASSIGN_OR_RETURN(auto vh, store_->FetchView(pos.page));
  if (pos.idx >= vh.view->size()) {
    return Status::OutOfRange("symbol index out of range");
  }
  if (symbol_bytes != nullptr) {
    *symbol_bytes = vh.view->tag[pos.idx] == kInvalidTag ? 1 : 2;
  }
  return vh.view->byte_off[pos.idx];
}

Result<int16_t> TreeUpdater::RecomputeHeader(PageId page) {
  NOK_ASSIGN_OR_RETURN(auto handle, store_->pool_->Fetch(page));
  StorePageHeader& h = store_->headers_[page];
  char* data = handle.mutable_data();
  const char* body = data + kStorePageHeaderSize;
  int level = h.st;
  int lo = level, hi = level;
  uint64_t tag_bits = 0;
  bool any = false;
  uint16_t off = 0;
  while (off < h.used) {
    const unsigned char b = static_cast<unsigned char>(body[off]);
    if (b & 0x80) {
      if (off + 1 >= h.used) {
        return Status::Corruption(
            "truncated open symbol while recomputing header");
      }
      tag_bits |= TagSummaryBits(static_cast<TagId>(
          ((b & 0x7f) << 8) | static_cast<unsigned char>(body[off + 1])));
      ++level;
      off = static_cast<uint16_t>(off + 2);
    } else if (b == 0) {
      --level;
      off = static_cast<uint16_t>(off + 1);
    } else {
      return Status::Corruption("bad symbol byte while recomputing header");
    }
    if (!any) {
      lo = hi = level;
      any = true;
    } else {
      lo = std::min(lo, level);
      hi = std::max(hi, level);
    }
  }
  h.lo = static_cast<int16_t>(any ? lo : 0);
  h.hi = static_cast<int16_t>(any ? hi : 0);
  if (page < store_->tag_summaries_.size()) {
    store_->tag_summaries_[page] = tag_bits;
  }
  EncodeStorePageHeader(data, h);
  handle.MarkDirty();
  handle.set_decoration(nullptr);
  ++last_pages_touched_;
  return static_cast<int16_t>(level);
}

Status TreeUpdater::AllocatePage(PageId* id) {
  if (store_->free_list_head_ != kInvalidPage) {
    *id = store_->free_list_head_;
    store_->free_list_head_ = store_->headers_[*id].next;
    store_->headers_[*id] = StorePageHeader{};
    if (*id < store_->tag_summaries_.size()) {
      store_->tag_summaries_[*id] = 0;
    }
  } else {
    NOK_RETURN_IF_ERROR(store_->pager_->AllocatePage(id));
    store_->headers_.resize(store_->pager_->page_count());
    store_->tag_summaries_.resize(store_->pager_->page_count(), 0);
  }
  ++last_pages_allocated_;
  return Status::OK();
}

Status TreeUpdater::WriteMeta() {
  // Deferred: the meta page is the store's commit record, so it must not
  // hit disk before the data pages it describes.  StringStore::Flush
  // writes it after the data pages are synced.
  store_->meta_dirty_ = true;
  return Status::OK();
}

Status TreeUpdater::InsertBefore(StorePos before, const std::string& symbols,
                                 uint64_t node_delta) {
  last_pages_touched_ = 0;
  last_pages_allocated_ = 0;
  if (symbols.empty()) return Status::OK();

  const uint32_t page_size = store_->options_.page_size;
  const uint32_t body_cap = page_size - kStorePageHeaderSize;
  const uint32_t reserve = static_cast<uint32_t>(
      page_size * store_->options_.reserve_ratio);
  const uint32_t fill_limit = body_cap - reserve;

  NOK_ASSIGN_OR_RETURN(const uint16_t b, ByteOffsetOf(before, nullptr));
  const PageId p = before.page;
  StorePageHeader& hp = store_->headers_[p];
  const uint32_t len = static_cast<uint32_t>(symbols.size());

  if (hp.used + len <= body_cap) {
    // Local case: the insertion fits in the page's reserved space.
    NOK_ASSIGN_OR_RETURN(auto handle, store_->pool_->Fetch(p));
    char* body = handle.mutable_data() + kStorePageHeaderSize;
    memmove(body + b + len, body + b, hp.used - b);
    memcpy(body + b, symbols.data(), len);
    hp.used = static_cast<uint16_t>(hp.used + len);
    handle.MarkDirty();
    handle.set_decoration(nullptr);
    NOK_RETURN_IF_ERROR(RecomputeHeader(p).status());
  } else {
    // Split: cut the tail of the page, then lay out insertion + tail over
    // this page and freshly chained ones (the paper's cut-and-paste).
    NOK_ASSIGN_OR_RETURN(auto handle, store_->pool_->Fetch(p));
    char* body = handle.mutable_data() + kStorePageHeaderSize;
    std::string queue = symbols;
    queue.append(body + b, hp.used - b);
    const PageId old_next = hp.next;
    hp.used = b;

    // Refill the original page up to the fill limit.
    uint32_t consumed = 0;
    if (b < fill_limit) {
      const uint32_t take =
          ChunkLen(queue.data(), static_cast<uint32_t>(queue.size()),
                   fill_limit - b);
      memcpy(body + b, queue.data(), take);
      hp.used = static_cast<uint16_t>(b + take);
      consumed = take;
    }
    handle.MarkDirty();
    handle.set_decoration(nullptr);
    handle.Release();

    // Spill the rest into new pages chained after p.
    std::vector<PageId> new_pages;
    while (consumed < queue.size()) {
      const uint32_t take = ChunkLen(
          queue.data() + consumed,
          static_cast<uint32_t>(queue.size() - consumed), fill_limit);
      NOK_CHECK(take > 0) << "symbol larger than a page fill limit";
      PageId q = kInvalidPage;
      NOK_RETURN_IF_ERROR(AllocatePage(&q));
      NOK_ASSIGN_OR_RETURN(auto qh, store_->pool_->Fetch(q));
      memset(qh.mutable_data(), 0, page_size);
      memcpy(qh.mutable_data() + kStorePageHeaderSize,
             queue.data() + consumed, take);
      store_->headers_[q].used = static_cast<uint16_t>(take);
      qh.MarkDirty();
      qh.set_decoration(nullptr);
      new_pages.push_back(q);
      consumed += take;
    }

    // Relink the chain.
    PageId prev = p;
    for (PageId q : new_pages) {
      store_->headers_[prev].next = q;
      prev = q;
    }
    store_->headers_[prev].next = old_next;

    // Recompute headers along the rewritten run; each page's st is the
    // previous page's end level.
    NOK_ASSIGN_OR_RETURN(int16_t end_level, RecomputeHeader(p));
    for (PageId q : new_pages) {
      store_->headers_[q].st = end_level;
      NOK_ASSIGN_OR_RETURN(end_level, RecomputeHeader(q));
    }
    if (old_next != kInvalidPage &&
        store_->headers_[old_next].st != end_level) {
      return Status::Corruption(
          "level mismatch after split: inserted string is unbalanced");
    }
  }

  NOK_RETURN_IF_ERROR(store_->RebuildChainFromHeaders());
  store_->node_count_ += node_delta;
  // The insertion may deepen the tree.
  for (PageId q : store_->chain_) {
    store_->max_level_ =
        std::max(store_->max_level_,
                 static_cast<int>(store_->headers_[q].hi));
  }
  return WriteMeta();
}

Status TreeUpdater::DeleteRange(StorePos from, StorePos to,
                                uint64_t node_delta) {
  last_pages_touched_ = 0;
  last_pages_allocated_ = 0;

  NOK_ASSIGN_OR_RETURN(int from_level, store_->LevelAt(from));
  NOK_ASSIGN_OR_RETURN(const uint16_t from_byte, ByteOffsetOf(from, nullptr));
  uint32_t to_sym_bytes = 0;
  NOK_ASSIGN_OR_RETURN(const uint16_t to_byte,
                       ByteOffsetOf(to, &to_sym_bytes));
  const uint16_t to_end = static_cast<uint16_t>(to_byte + to_sym_bytes);

  // Walk the chain from from.page to to.page, trimming each page.
  std::vector<PageId> emptied;
  PageId page = from.page;
  for (;;) {
    StorePageHeader& h = store_->headers_[page];
    const uint16_t cut_begin = (page == from.page) ? from_byte : 0;
    const uint16_t cut_end = (page == to.page) ? to_end : h.used;
    if (cut_begin > cut_end || cut_end > h.used) {
      return Status::Corruption("bad delete range");
    }
    if (cut_begin == 0 && cut_end == h.used) {
      h.used = 0;
      emptied.push_back(page);
    } else if (cut_begin < cut_end) {
      NOK_ASSIGN_OR_RETURN(auto handle, store_->pool_->Fetch(page));
      char* body = handle.mutable_data() + kStorePageHeaderSize;
      memmove(body + cut_begin, body + cut_end, h.used - cut_end);
      h.used = static_cast<uint16_t>(h.used - (cut_end - cut_begin));
      handle.MarkDirty();
      handle.set_decoration(nullptr);
    }
    if (page == to.page) break;
    page = h.next;
    if (page == kInvalidPage) {
      return Status::Corruption("delete range runs past the chain");
    }
  }

  // Fix the st of the page holding the first surviving symbol after the
  // range: it is now the level just after the deleted subtree's close.
  if (to.page != from.page) {
    store_->headers_[to.page].st = static_cast<int16_t>(from_level - 1);
  }

  // Unlink emptied pages and recycle them through the free list.
  for (PageId dead : emptied) {
    // Find the predecessor among live pages (walk the current chain
    // mirror; the chain vector predates this operation, so recompute by
    // following next pointers from the first data page).
    PageId prev = kInvalidPage;
    PageId cur = store_->first_data_page_;
    while (cur != kInvalidPage && cur != dead) {
      prev = cur;
      cur = store_->headers_[cur].next;
    }
    if (cur != dead) {
      return Status::Corruption("emptied page not found in chain");
    }
    const PageId next = store_->headers_[dead].next;
    if (prev == kInvalidPage) {
      store_->first_data_page_ = next;
    } else {
      store_->headers_[prev].next = next;
      NOK_RETURN_IF_ERROR(RecomputeHeader(prev).status());
    }
    store_->headers_[dead].next = store_->free_list_head_;
    store_->headers_[dead].used = 0;
    store_->free_list_head_ = dead;
    NOK_RETURN_IF_ERROR(RecomputeHeader(dead).status());
  }

  // Recompute the partially trimmed pages.
  if (store_->headers_[from.page].used > 0 ||
      std::find(emptied.begin(), emptied.end(), from.page) ==
          emptied.end()) {
    NOK_RETURN_IF_ERROR(RecomputeHeader(from.page).status());
  }
  if (to.page != from.page &&
      std::find(emptied.begin(), emptied.end(), to.page) == emptied.end()) {
    NOK_RETURN_IF_ERROR(RecomputeHeader(to.page).status());
  }

  NOK_RETURN_IF_ERROR(store_->RebuildChainFromHeaders());
  NOK_CHECK(store_->node_count_ >= node_delta);
  store_->node_count_ -= node_delta;
  return WriteMeta();
}

// ---------------------------------------------------------------------------
// DocumentStore-level updates: index maintenance around the string edits.

namespace {

struct SubtreeNode {
  DeweyId dewey;
  TagId tag;
};

/// Collects (dewey, tag) for every node of the subtree rooted at pos.
Status CollectSubtree(StringStore* tree, StorePos pos, const DeweyId& dewey,
                      std::vector<SubtreeNode>* out) {
  NOK_ASSIGN_OR_RETURN(TagId tag, tree->TagAt(pos));
  out->push_back(SubtreeNode{dewey, tag});
  NOK_ASSIGN_OR_RETURN(auto child, tree->FirstChild(pos));
  uint32_t index = 0;
  while (child.has_value()) {
    NOK_RETURN_IF_ERROR(
        CollectSubtree(tree, *child, dewey.Child(index), out));
    NOK_ASSIGN_OR_RETURN(auto sibling, tree->FollowingSibling(*child));
    child = sibling;
    ++index;
  }
  return Status::OK();
}

/// Deletes the (key -> {pos, dewey}) entry whose dewey matches, ignoring
/// the stored position (positions are stale during updates).  Returns the
/// removed entry's payload position via *old_pos (0 if unused).
Result<bool> DeleteNodeRef(BTree* index, const Slice& key,
                           const DeweyId& dewey) {
  BTreeIterator it = index->NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(key));
  while (it.Valid() && it.key() == key) {
    uint64_t pos = 0;
    DeweyId stored = DeweyId::Root();
    NOK_RETURN_IF_ERROR(
        index_keys::ParseNodeRefPayload(it.value(), &pos, &stored));
    if (stored == dewey) {
      const std::string payload = it.value().ToString();
      return index->DeleteExact(key, Slice(payload));
    }
    NOK_RETURN_IF_ERROR(it.Next());
  }
  return false;
}

/// Returns dewey with the component at `depth` (0-based) shifted by delta.
DeweyId ShiftComponent(const DeweyId& dewey, size_t depth, int64_t delta) {
  std::vector<uint32_t> c = dewey.components();
  NOK_CHECK(depth < c.size());
  c[depth] = static_cast<uint32_t>(static_cast<int64_t>(c[depth]) + delta);
  return DeweyId(std::move(c));
}

}  // namespace

Status DocumentStore::InsertSubtree(const DeweyId& parent,
                                    uint32_t child_index,
                                    const std::string& xml_fragment) {
  NOK_RETURN_IF_ERROR(BeginWalTxn());
  const uint64_t ticks =
      wal_writer_ != nullptr ? wal_writer_->capture_ticks() : 0;
  return FinishWalOp(InsertSubtreeImpl(parent, child_index, xml_fragment),
                     ticks);
}

Status DocumentStore::InsertSubtreeImpl(const DeweyId& parent,
                                        uint32_t child_index,
                                        const std::string& xml_fragment) {
  if (options_.read_only) {
    return Status::InvalidArgument(
        "InsertSubtree on a store opened read-only");
  }
  NOK_ASSIGN_OR_RETURN(auto fragment, DomTree::Parse(xml_fragment));
  NOK_ASSIGN_OR_RETURN(StorePos parent_pos, Locate(parent));

  // Enumerate the parent's existing children (positions + count).
  std::vector<StorePos> children;
  {
    NOK_ASSIGN_OR_RETURN(auto child, tree_->FirstChild(parent_pos));
    while (child.has_value()) {
      children.push_back(*child);
      NOK_ASSIGN_OR_RETURN(auto sibling, tree_->FollowingSibling(*child));
      child = sibling;
    }
  }
  if (child_index > children.size()) {
    return Status::InvalidArgument(
        "child index " + std::to_string(child_index) + " > child count " +
        std::to_string(children.size()));
  }
  // Every argument is validated; from here on the op mutates state, so
  // the staleness marker (the first captured write in WAL mode) comes
  // only after the checks above can no longer reject the call.
  NOK_RETURN_IF_ERROR(MarkPositionsStale());

  // Physical insertion point: before child child_index, or before the
  // parent's close symbol when appending.
  StorePos before;
  if (child_index < children.size()) {
    before = children[child_index];
  } else {
    NOK_ASSIGN_OR_RETURN(uint64_t close_global,
                         tree_->SubtreeEndGlobal(parent_pos));
    NOK_ASSIGN_OR_RETURN(before, tree_->PosForGlobal(close_global));
  }

  // Rewrite index entries of the shifted following siblings, last first so
  // rewritten keys never collide with not-yet-rewritten ones.
  const size_t shift_depth = parent.depth();  // Component index to bump.
  for (size_t j = children.size(); j-- > child_index;) {
    std::vector<SubtreeNode> nodes;
    NOK_RETURN_IF_ERROR(CollectSubtree(
        tree_.get(), children[j],
        parent.Child(static_cast<uint32_t>(j)), &nodes));
    for (const SubtreeNode& node : nodes) {
      const DeweyId new_dewey = ShiftComponent(node.dewey, shift_depth, +1);
      NOK_RETURN_IF_ERROR(RewriteIndexEntries(node.dewey, new_dewey,
                                              node.tag));
    }
  }

  // Encode the fragment and collect its (dewey, tag, value) triples.
  std::string symbols;
  uint64_t new_nodes = 0;
  struct NewNode {
    DeweyId dewey;
    TagId tag;
    std::string value;
  };
  std::vector<NewNode> additions;
  const DeweyId frag_root_dewey = parent.Child(child_index);
  // Iterative encoding to match CollectSubtree's pre-order.
  struct Item {
    const DomNode* node;
    DeweyId dewey;
    size_t next_child;
  };
  std::vector<Item> stack;
  stack.push_back(Item{fragment.root(), frag_root_dewey, 0});
  {
    NOK_ASSIGN_OR_RETURN(TagId tag, tags_.Intern(fragment.root()->name));
    tags_.AddOccurrence(tag);
    TreeUpdater::AppendOpenSymbol(&symbols, tag);
    additions.push_back(
        NewNode{frag_root_dewey, tag, fragment.root()->value});
    ++new_nodes;
  }
  while (!stack.empty()) {
    Item& top = stack.back();
    if (top.next_child < top.node->children.size()) {
      const DomNode* child = top.node->children[top.next_child].get();
      const DeweyId child_dewey =
          top.dewey.Child(static_cast<uint32_t>(top.next_child));
      ++top.next_child;
      NOK_ASSIGN_OR_RETURN(TagId tag, tags_.Intern(child->name));
      tags_.AddOccurrence(tag);
      TreeUpdater::AppendOpenSymbol(&symbols, tag);
      additions.push_back(NewNode{child_dewey, tag, child->value});
      ++new_nodes;
      stack.push_back(Item{child, child_dewey, 0});
    } else {
      TreeUpdater::AppendCloseSymbol(&symbols);
      stack.pop_back();
    }
  }

  // String-level edit.
  TreeUpdater updater(tree_.get());
  NOK_RETURN_IF_ERROR(updater.InsertBefore(before, symbols, new_nodes));

  // Index entries for the new nodes.
  for (const NewNode& node : additions) {
    const std::string key = node.dewey.Encode();
    NOK_RETURN_IF_ERROR(
        tag_index_->Insert(index_keys::TagKey(node.tag),
                           index_keys::NodeRefPayload(0, node.dewey)));
    if (!node.value.empty()) {
      uint64_t offset = 0;
      NOK_RETURN_IF_ERROR(values_->Append(Slice(node.value), &offset));
      NOK_RETURN_IF_ERROR(value_index_->Insert(
          index_keys::ValueKey(Slice(node.value)),
          index_keys::NodeRefPayload(0, node.dewey)));
      NOK_RETURN_IF_ERROR(id_index_->Insert(
          Slice(key), index_keys::IdPayload(0, true, offset)));
    } else {
      NOK_RETURN_IF_ERROR(id_index_->Insert(
          Slice(key), index_keys::IdPayload(0, false, 0)));
    }
  }

  stats_.node_count = tree_->node_count();
  stats_.max_depth = tree_->max_level();
  RefreshSizeStats();
  NOK_RETURN_IF_ERROR(SaveDictionary());
  return Status::OK();
}

Status DocumentStore::DeleteSubtree(const DeweyId& node) {
  NOK_RETURN_IF_ERROR(BeginWalTxn());
  const uint64_t ticks =
      wal_writer_ != nullptr ? wal_writer_->capture_ticks() : 0;
  return FinishWalOp(DeleteSubtreeImpl(node), ticks);
}

Status DocumentStore::DeleteSubtreeImpl(const DeweyId& node) {
  if (options_.read_only) {
    return Status::InvalidArgument(
        "DeleteSubtree on a store opened read-only");
  }
  if (node.depth() <= 1) {
    return Status::InvalidArgument("cannot delete the document root");
  }
  NOK_ASSIGN_OR_RETURN(StorePos pos, Locate(node));
  NOK_RETURN_IF_ERROR(MarkPositionsStale());
  const DeweyId parent = *node.Parent();
  const uint32_t child_index = node.components().back();
  const size_t shift_depth = parent.depth();

  // Remove the index entries of the doomed subtree.
  std::vector<SubtreeNode> doomed;
  NOK_RETURN_IF_ERROR(CollectSubtree(tree_.get(), pos, node, &doomed));
  for (const SubtreeNode& n : doomed) {
    NOK_RETURN_IF_ERROR(RemoveIndexEntries(n.dewey, n.tag));
    tags_.SubOccurrence(n.tag);
  }

  // Rewrite the following siblings' index entries (ascending: the target
  // keys were just vacated).
  std::vector<StorePos> siblings;
  {
    NOK_ASSIGN_OR_RETURN(auto sibling, tree_->FollowingSibling(pos));
    while (sibling.has_value()) {
      siblings.push_back(*sibling);
      NOK_ASSIGN_OR_RETURN(auto next, tree_->FollowingSibling(*sibling));
      sibling = next;
    }
  }
  for (size_t i = 0; i < siblings.size(); ++i) {
    const uint32_t old_index =
        child_index + 1 + static_cast<uint32_t>(i);
    std::vector<SubtreeNode> nodes;
    NOK_RETURN_IF_ERROR(CollectSubtree(tree_.get(), siblings[i],
                                       parent.Child(old_index), &nodes));
    for (const SubtreeNode& n : nodes) {
      const DeweyId new_dewey = ShiftComponent(n.dewey, shift_depth, -1);
      NOK_RETURN_IF_ERROR(RewriteIndexEntries(n.dewey, new_dewey, n.tag));
    }
  }

  // String-level edit.
  NOK_ASSIGN_OR_RETURN(uint64_t close_global, tree_->SubtreeEndGlobal(pos));
  NOK_ASSIGN_OR_RETURN(StorePos to, tree_->PosForGlobal(close_global));
  TreeUpdater updater(tree_.get());
  NOK_RETURN_IF_ERROR(updater.DeleteRange(pos, to, doomed.size()));

  stats_.node_count = tree_->node_count();
  stats_.max_depth = tree_->max_level();
  RefreshSizeStats();
  NOK_RETURN_IF_ERROR(SaveDictionary());
  return Status::OK();
}

Status DocumentStore::RewriteIndexEntries(const DeweyId& old_dewey,
                                          const DeweyId& new_dewey,
                                          TagId tag) {
  const std::string old_key = old_dewey.Encode();
  const std::string new_key = new_dewey.Encode();
  NOK_ASSIGN_OR_RETURN(auto payload, id_index_->Get(Slice(old_key)));
  NOK_ASSIGN_OR_RETURN(bool removed, id_index_->Delete(Slice(old_key)));
  if (!removed) {
    return Status::Corruption("missing B+i entry for " +
                              old_dewey.ToString());
  }
  NOK_RETURN_IF_ERROR(id_index_->Insert(Slice(new_key), Slice(payload)));

  NOK_ASSIGN_OR_RETURN(bool tag_removed,
                       DeleteNodeRef(tag_index_.get(),
                                     index_keys::TagKey(tag), old_dewey));
  if (!tag_removed) {
    return Status::Corruption("missing B+t entry for " +
                              old_dewey.ToString());
  }
  NOK_RETURN_IF_ERROR(
      tag_index_->Insert(index_keys::TagKey(tag),
                         index_keys::NodeRefPayload(0, new_dewey)));

  bool has_value = false;
  uint64_t pos = 0, offset = 0;
  NOK_RETURN_IF_ERROR(index_keys::ParseIdPayload(Slice(payload), &pos,
                                                 &has_value, &offset));
  if (has_value) {
    NOK_ASSIGN_OR_RETURN(auto value, values_->Read(offset));
    NOK_ASSIGN_OR_RETURN(
        bool value_removed,
        DeleteNodeRef(value_index_.get(),
                      index_keys::ValueKey(Slice(value)), old_dewey));
    if (!value_removed) {
      return Status::Corruption("missing B+v entry for " +
                                old_dewey.ToString());
    }
    NOK_RETURN_IF_ERROR(value_index_->Insert(
        index_keys::ValueKey(Slice(value)),
        index_keys::NodeRefPayload(0, new_dewey)));
  }
  return Status::OK();
}

Status DocumentStore::RemoveIndexEntries(const DeweyId& dewey, TagId tag) {
  const std::string key = dewey.Encode();
  NOK_ASSIGN_OR_RETURN(auto payload, id_index_->Get(Slice(key)));
  NOK_RETURN_IF_ERROR(id_index_->Delete(Slice(key)).status());
  NOK_RETURN_IF_ERROR(
      DeleteNodeRef(tag_index_.get(), index_keys::TagKey(tag), dewey)
          .status());
  bool has_value = false;
  uint64_t pos = 0, offset = 0;
  NOK_RETURN_IF_ERROR(index_keys::ParseIdPayload(Slice(payload), &pos,
                                                 &has_value, &offset));
  if (has_value) {
    NOK_ASSIGN_OR_RETURN(auto value, values_->Read(offset));
    NOK_RETURN_IF_ERROR(
        DeleteNodeRef(value_index_.get(),
                      index_keys::ValueKey(Slice(value)), dewey)
            .status());
  }
  // The value record itself stays in the data file (orphaned); the data
  // file is append-only and compaction happens on rebuild.
  return Status::OK();
}


Status DocumentStore::RefreshPositions() {
  if (options_.read_only) {
    return Status::InvalidArgument(
        "RefreshPositions on a store opened read-only");
  }
  if (positions_fresh_) return Status::OK();
  NOK_RETURN_IF_ERROR(BeginWalTxn());
  const uint64_t ticks =
      wal_writer_ != nullptr ? wal_writer_->capture_ticks() : 0;
  return FinishWalOp(RefreshPositionsImpl(), ticks);
}

Status DocumentStore::RefreshPositionsImpl() {

  // The path index is rebuilt wholesale: updates do not maintain it (its
  // keys are whole root paths), so recreate it on a fresh file.
  {
    NOK_ASSIGN_OR_RETURN(
        auto fresh_file,
        OpenComponent(store_files::kPathIdx, /*create=*/true));
    NOK_RETURN_IF_ERROR(fresh_file->Truncate(0));
    BTree::Options idx_options;
    idx_options.page_size = options_.index_page_size;
    idx_options.pool_frames = options_.index_pool_frames;
    idx_options.checksum_pages = options_.checksum_pages;
    NOK_ASSIGN_OR_RETURN(path_index_,
                         BTree::Open(std::move(fresh_file), idx_options));
    path_index_->set_epoch(epoch_);
  }

  // One document-order pass deriving (dewey, position, tag path) for
  // every node.
  StringStore* tree = tree_.get();
  std::vector<uint32_t> child_counter(
      static_cast<size_t>(tree->max_level()) + 2, 0);
  std::vector<uint32_t> path;
  std::vector<TagId> tag_path;
  std::optional<StorePos> pos = tree->RootPos();
  while (pos.has_value()) {
    NOK_ASSIGN_OR_RETURN(int level, tree->LevelAt(*pos));
    NOK_ASSIGN_OR_RETURN(TagId tag, tree->TagAt(*pos));
    const size_t l = static_cast<size_t>(level);
    path.resize(l);
    path[l - 1] = child_counter[l]++;
    child_counter[l + 1] = 0;
    tag_path.resize(l);
    tag_path[l - 1] = tag;
    const DeweyId dewey{std::vector<uint32_t>(path)};
    const uint64_t global = tree->GlobalPos(*pos);
    const std::string key = dewey.Encode();

    // B+p: reinsert into the fresh index.
    NOK_RETURN_IF_ERROR(path_index_->Insert(
        index_keys::PathKey(tag_path),
        index_keys::NodeRefPayload(global, dewey)));

    // B+i: rewrite the payload, keeping the value-offset field.
    NOK_ASSIGN_OR_RETURN(auto payload, id_index_->Get(Slice(key)));
    uint64_t old_pos = 0, offset = 0;
    bool has_value = false;
    NOK_RETURN_IF_ERROR(index_keys::ParseIdPayload(
        Slice(payload), &old_pos, &has_value, &offset));
    NOK_RETURN_IF_ERROR(id_index_->Delete(Slice(key)).status());
    NOK_RETURN_IF_ERROR(id_index_->Insert(
        Slice(key), index_keys::IdPayload(global, has_value, offset)));

    // B+t: rewrite this node's entry under its tag.
    NOK_ASSIGN_OR_RETURN(
        bool tag_removed,
        DeleteNodeRef(tag_index_.get(), index_keys::TagKey(tag), dewey));
    if (!tag_removed) {
      return Status::Corruption("B+t entry missing during refresh for " +
                                dewey.ToString());
    }
    NOK_RETURN_IF_ERROR(tag_index_->Insert(
        index_keys::TagKey(tag), index_keys::NodeRefPayload(global,
                                                            dewey)));

    // B+v: rewrite when the node carries a value.
    if (has_value) {
      NOK_ASSIGN_OR_RETURN(auto value, values_->Read(offset));
      NOK_ASSIGN_OR_RETURN(
          bool value_removed,
          DeleteNodeRef(value_index_.get(),
                        index_keys::ValueKey(Slice(value)), dewey));
      if (!value_removed) {
        return Status::Corruption("B+v entry missing during refresh for " +
                                  dewey.ToString());
      }
      NOK_RETURN_IF_ERROR(value_index_->Insert(
          index_keys::ValueKey(Slice(value)),
          index_keys::NodeRefPayload(global, dewey)));
    }

    NOK_ASSIGN_OR_RETURN(auto next, tree->NextOpen(*pos));
    pos = next;
  }

  positions_fresh_ = true;
  ++structure_version_;
  if (!options_.dir.empty()) {
    if (wal_writer_ != nullptr && wal_writer_->in_transaction()) {
      wal_writer_->StageRemove(store_files::kStale);
    } else {
      NOK_RETURN_IF_ERROR(RemoveFile(options_.dir + "/positions.stale"));
    }
  }
  return Status::OK();
}

}  // namespace nok
