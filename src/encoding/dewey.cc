#include "encoding/dewey.h"

#include "common/coding.h"

namespace nok {

bool DeweyId::IsAncestorOf(const DeweyId& other) const {
  if (components_.size() >= other.components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

int DeweyId::Compare(const DeweyId& other) const {
  const size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] < other.components_[i] ? -1 : 1;
    }
  }
  if (components_.size() == other.components_.size()) return 0;
  return components_.size() < other.components_.size() ? -1 : 1;
}

std::string DeweyId::Encode() const {
  std::string out;
  out.reserve(components_.size() * 4);
  for (uint32_t c : components_) {
    PutBigEndian32(&out, c);
  }
  return out;
}

Result<DeweyId> DeweyId::Decode(const Slice& data) {
  if (data.empty() || data.size() % 4 != 0) {
    return Status::Corruption("bad Dewey encoding length " +
                              std::to_string(data.size()));
  }
  std::vector<uint32_t> components(data.size() / 4);
  for (size_t i = 0; i < components.size(); ++i) {
    components[i] = DecodeBigEndian32(data.data() + 4 * i);
  }
  return DeweyId(std::move(components));
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace nok
