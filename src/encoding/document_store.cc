#include "encoding/document_store.h"

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"
#include "xml/escape.h"
#include "xml/sax_parser.h"

namespace nok {

namespace index_keys {

std::string TagKey(TagId tag) {
  std::string key;
  PutBigEndian16(&key, tag);
  return key;
}

std::string ValueKey(const Slice& value) {
  std::string key;
  PutBigEndian64(&key, Hash64(value));
  return key;
}

std::string PathKey(const std::vector<TagId>& path) {
  std::string key;
  key.reserve(path.size() * 2);
  for (TagId tag : path) PutBigEndian16(&key, tag);
  return key;
}

std::string NodeRefPayload(uint64_t pos, const DeweyId& dewey) {
  std::string payload;
  PutVarint64(&payload, pos);
  payload += dewey.Encode();
  return payload;
}

Status ParseNodeRefPayload(const Slice& payload, uint64_t* pos,
                           DeweyId* dewey) {
  Slice input = payload;
  if (!GetVarint64(&input, pos)) {
    return Status::Corruption("bad node-ref payload");
  }
  NOK_ASSIGN_OR_RETURN(*dewey, DeweyId::Decode(input));
  return Status::OK();
}

std::string IdPayload(uint64_t pos, bool has_value, uint64_t value_offset) {
  std::string payload;
  PutVarint64(&payload, pos);
  PutVarint64(&payload, has_value ? value_offset + 1 : 0);
  return payload;
}

Status ParseIdPayload(const Slice& payload, uint64_t* pos, bool* has_value,
                      uint64_t* value_offset) {
  Slice input = payload;
  uint64_t v = 0;
  if (!GetVarint64(&input, pos) || !GetVarint64(&input, &v)) {
    return Status::Corruption("bad B+i payload");
  }
  *has_value = v != 0;
  *value_offset = v == 0 ? 0 : v - 1;
  return Status::OK();
}

}  // namespace index_keys

namespace {

constexpr const char* kTreeFile = store_files::kTree;
constexpr const char* kValuesFile = store_files::kValues;
constexpr const char* kDictFile = store_files::kDict;
constexpr const char* kTagIdxFile = store_files::kTagIdx;
constexpr const char* kValIdxFile = store_files::kValIdx;
constexpr const char* kIdIdxFile = store_files::kIdIdx;
constexpr const char* kPathIdxFile = store_files::kPathIdx;
constexpr const char* kStaleFile = store_files::kStale;
constexpr const char* kBpFile = store_files::kBpIndex;
constexpr const char* kSynopsisFile = store_files::kSynopsis;

}  // namespace

const char* NavModeName(NavMode mode) {
  return mode == NavMode::kBp ? "bp" : "paged";
}

Result<std::unique_ptr<File>> DocumentStore::OpenComponent(
    const char* name, bool create) const {
  const std::string path =
      options_.dir.empty() ? std::string(name) : options_.dir + "/" + name;
  std::unique_ptr<File> file;
  if (options_.file_factory) {
    NOK_ASSIGN_OR_RETURN(file, options_.file_factory(path, create));
  } else if (options_.dir.empty()) {
    file = NewMemFile();
  } else if (options_.read_only && !create) {
    return OpenPosixFileReadOnly(path);
  } else {
    NOK_ASSIGN_OR_RETURN(file, OpenPosixFile(path, create));
  }
  if (wal_writer_ != nullptr) {
    // WAL mode: capture every mutation of this component in the open
    // transaction instead of writing through.
    return wal_writer_->Wrap(name, std::move(file));
  }
  return file;
}

Status DocumentStore::InitFiles(const Options& options) {
  options_ = options;
  if (!options.dir.empty()) {
    NOK_RETURN_IF_ERROR(CreateDirs(options.dir));
  }
  return Status::OK();
}

Result<std::unique_ptr<DocumentStore>> DocumentStore::Build(
    const std::string& xml, Options options) {
  if (options.read_only) {
    return Status::InvalidArgument(
        "Build writes every component; open the finished store with "
        "OpenDir(read_only) instead");
  }
  if (options.wal.enabled) {
    return Status::InvalidArgument(
        "Build already commits atomically via the tree meta page; reopen "
        "the finished store with OpenDir to enable the WAL");
  }
  std::unique_ptr<DocumentStore> store(new DocumentStore());
  NOK_RETURN_IF_ERROR(store->InitFiles(options));

  // Component files.
  NOK_ASSIGN_OR_RETURN(auto tree_file,
                       store->OpenComponent(kTreeFile, true));
  if (tree_file->Size() != 0) {
    return Status::AlreadyExists("tree file is not empty; use OpenDir");
  }
  NOK_ASSIGN_OR_RETURN(auto values_file,
                       store->OpenComponent(kValuesFile, true));
  NOK_ASSIGN_OR_RETURN(auto tag_idx_file,
                       store->OpenComponent(kTagIdxFile, true));
  NOK_ASSIGN_OR_RETURN(auto val_idx_file,
                       store->OpenComponent(kValIdxFile, true));
  NOK_ASSIGN_OR_RETURN(auto id_idx_file,
                       store->OpenComponent(kIdIdxFile, true));
  NOK_ASSIGN_OR_RETURN(auto path_idx_file,
                       store->OpenComponent(kPathIdxFile, true));

  StringStore::Options tree_options;
  tree_options.page_size = options.page_size;
  tree_options.reserve_ratio = options.reserve_ratio;
  tree_options.pool_frames = options.pool_frames;
  tree_options.use_header_skip = options.use_header_skip;
  tree_options.use_tag_summaries = options.use_tag_summaries;
  tree_options.checksum_pages = options.checksum_pages;
  StringStore::Builder builder(std::move(tree_file), tree_options);

  ValueStore::Options value_options;
  value_options.checksum_records = options.checksum_pages;
  NOK_ASSIGN_OR_RETURN(store->values_, ValueStore::Open(
                                           std::move(values_file),
                                           value_options));
  BTree::Options idx_options;
  idx_options.page_size = options.index_page_size;
  idx_options.pool_frames = options.index_pool_frames;
  idx_options.checksum_pages = options.checksum_pages;
  NOK_ASSIGN_OR_RETURN(store->tag_index_,
                       BTree::Open(std::move(tag_idx_file), idx_options));
  NOK_ASSIGN_OR_RETURN(store->value_index_,
                       BTree::Open(std::move(val_idx_file), idx_options));
  NOK_ASSIGN_OR_RETURN(store->id_index_,
                       BTree::Open(std::move(id_idx_file), idx_options));
  NOK_ASSIGN_OR_RETURN(store->path_index_,
                       BTree::Open(std::move(path_idx_file), idx_options));

  // Single SAX pass: emit symbols, values, and index entries.
  struct Frame {
    std::string value;
    uint64_t pos = 0;
    bool has_element_children = false;
    uint32_t next_child = 0;
  };
  std::vector<Frame> frames;
  std::vector<uint32_t> dewey_path;
  std::vector<TagId> tag_path;
  uint64_t leaf_count = 0;
  uint64_t leaf_depth_sum = 0;
  // The path synopsis trie rides the same SAX pass — no extra scan.
  PathSynopsis::Builder synopsis_builder;

  // Closes the top frame: files value/index entries, emits ')'.
  auto close_top = [&]() -> Status {
    Frame& frame = frames.back();
    const DeweyId dewey{std::vector<uint32_t>(dewey_path)};
    const std::string key = dewey.Encode();
    std::string value = TrimWhitespace(frame.value);
    if (!value.empty()) {
      uint64_t offset = 0;
      NOK_RETURN_IF_ERROR(store->values_->Append(Slice(value), &offset));
      NOK_RETURN_IF_ERROR(store->value_index_->Insert(
          index_keys::ValueKey(Slice(value)),
          index_keys::NodeRefPayload(frame.pos, dewey)));
      NOK_RETURN_IF_ERROR(store->id_index_->Insert(
          Slice(key), index_keys::IdPayload(frame.pos, true, offset)));
    } else {
      NOK_RETURN_IF_ERROR(store->id_index_->Insert(
          Slice(key), index_keys::IdPayload(frame.pos, false, 0)));
    }
    if (!frame.has_element_children) {
      ++leaf_count;
      leaf_depth_sum += dewey_path.size();
    }
    NOK_RETURN_IF_ERROR(builder.Close());
    if (store->options_.use_synopsis) synopsis_builder.Close();
    frames.pop_back();
    dewey_path.pop_back();
    tag_path.pop_back();
    return Status::OK();
  };

  // Opens a node (element or attribute pseudo-node).
  auto open_node = [&](const std::string& name) -> Status {
    NOK_ASSIGN_OR_RETURN(TagId tag, store->tags_.Intern(name));
    store->tags_.AddOccurrence(tag);
    if (frames.empty()) {
      dewey_path.push_back(0);
    } else {
      frames.back().has_element_children = true;
      dewey_path.push_back(frames.back().next_child++);
    }
    uint64_t pos = 0;
    NOK_RETURN_IF_ERROR(builder.Open(tag, &pos));
    if (store->options_.use_synopsis) synopsis_builder.Open(tag);
    tag_path.push_back(tag);
    const DeweyId dewey{std::vector<uint32_t>(dewey_path)};
    NOK_RETURN_IF_ERROR(store->tag_index_->Insert(
        index_keys::TagKey(tag), index_keys::NodeRefPayload(pos, dewey)));
    NOK_RETURN_IF_ERROR(store->path_index_->Insert(
        index_keys::PathKey(tag_path),
        index_keys::NodeRefPayload(pos, dewey)));
    Frame frame;
    frame.pos = pos;
    frames.push_back(std::move(frame));
    return Status::OK();
  };

  SaxParser parser(xml);
  SaxEvent event;
  for (;;) {
    NOK_RETURN_IF_ERROR(parser.Next(&event));
    if (event.type == SaxEvent::Type::kEndDocument) break;
    switch (event.type) {
      case SaxEvent::Type::kStartElement: {
        NOK_RETURN_IF_ERROR(open_node(event.name));
        // Attribute pseudo-children come first (Figure 2 of the paper);
        // attributes never have element children, so each closes
        // immediately.
        for (auto& [attr_name, attr_value] : event.attributes) {
          NOK_RETURN_IF_ERROR(open_node("@" + attr_name));
          frames.back().value = attr_value;
          // An attribute node is a leaf but its parent has children.
          NOK_RETURN_IF_ERROR(close_top());
        }
        break;
      }
      case SaxEvent::Type::kEndElement: {
        NOK_RETURN_IF_ERROR(close_top());
        break;
      }
      case SaxEvent::Type::kText: {
        NOK_CHECK(!frames.empty());
        AppendTextChunk(&frames.back().value, event.text);
        break;
      }
      case SaxEvent::Type::kEndDocument:
        break;
    }
  }
  if (!frames.empty()) {
    return Status::ParseError("document ended with open elements");
  }

  // Commit, generation 1.  Everything the tree meta will declare valid —
  // the value file, the indexes, the dictionary — must be durable before
  // builder.Finish() writes that meta (the store-level commit record).  A
  // crash before Finish leaves a tree file without a valid meta page, so
  // OpenDir reports the half-built store instead of opening it.
  store->epoch_ = 1;
  NOK_RETURN_IF_ERROR(store->values_->Sync());
  for (BTree* index : {store->tag_index_.get(), store->value_index_.get(),
                       store->id_index_.get(), store->path_index_.get()}) {
    index->set_epoch(store->epoch_);
    NOK_RETURN_IF_ERROR(index->Flush());
  }
  NOK_RETURN_IF_ERROR(store->SaveDictionary());
  NOK_ASSIGN_OR_RETURN(store->tree_, builder.Finish(store->epoch_));

  store->stats_.xml_bytes = xml.size();
  store->stats_.node_count = store->tree_->node_count();
  store->stats_.max_depth = store->tree_->max_level();
  store->stats_.avg_depth =
      leaf_count == 0 ? 0
                      : static_cast<double>(leaf_depth_sum) /
                            static_cast<double>(leaf_count);
  store->stats_.distinct_tags = store->tags_.size();
  store->RefreshSizeStats();
  if (store->options_.nav_mode == NavMode::kBp) {
    // Materialize the BP tier eagerly so the first query pays nothing,
    // and persist the sidecar next to the freshly committed generation.
    NOK_RETURN_IF_ERROR(store->EnsureBpIndex());
    NOK_RETURN_IF_ERROR(store->PersistBpSidecar());
  }
  if (store->options_.use_synopsis) {
    NOK_ASSIGN_OR_RETURN(store->synopsis_,
                         synopsis_builder.Finish(store->epoch_));
    store->synopsis_version_ = store->structure_version_;
    NOK_RETURN_IF_ERROR(store->PersistSynopsisSidecar());
  }
  return store;
}

Result<std::unique_ptr<DocumentStore>> DocumentStore::OpenDir(
    Options options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("OpenDir requires a directory");
  }
  std::unique_ptr<DocumentStore> store(new DocumentStore());
  NOK_RETURN_IF_ERROR(store->InitFiles(options));

  if (options.wal.enabled) {
    if (options.read_only) {
      return Status::InvalidArgument(
          "WAL mode needs a writable open; readers open read_only "
          "without wal.enabled");
    }
    // Recovery must run before any component is opened: a crash during a
    // commit apply leaves the components at mixed epochs, which the
    // generation cross-check below would reject.
    WalFileFactory factory = options.file_factory;
    NOK_RETURN_IF_ERROR(RecoverStoreDir(options.dir, factory,
                                        &store->recovery_report_));
    const std::string wal_path = options.dir + "/" + kWalFileName;
    std::unique_ptr<File> wal_file;
    if (factory) {
      NOK_ASSIGN_OR_RETURN(wal_file, factory(wal_path, true));
    } else {
      NOK_ASSIGN_OR_RETURN(wal_file, OpenPosixFile(wal_path, true));
    }
    NOK_ASSIGN_OR_RETURN(
        store->wal_writer_,
        WalWriter::Open(options.dir, std::move(wal_file)));
  } else {
    // A WAL with committed-but-unapplied transactions means the store
    // crashed mid-commit; opening past it would serve the old epoch and
    // then lose the durable transactions on the next Flush.
    NOK_ASSIGN_OR_RETURN(const uint64_t pending,
                         PendingWalTransactions(options.dir));
    if (pending > 0) {
      return Status::InvalidArgument(
          "store has " + std::to_string(pending) +
          " committed but unapplied write-ahead-log transaction(s); run "
          "`nokq recover` or reopen with wal.enabled");
    }
  }

  NOK_ASSIGN_OR_RETURN(auto tree_file,
                       store->OpenComponent(kTreeFile, false));
  // The tree meta page records whether the store was built with
  // checksums; every other component follows that format.
  NOK_ASSIGN_OR_RETURN(const bool checksummed,
                       StringStore::SniffChecksummed(tree_file.get()));
  store->options_.checksum_pages = checksummed;
  StringStore::Options tree_options;
  tree_options.page_size = options.page_size;
  tree_options.reserve_ratio = options.reserve_ratio;
  tree_options.pool_frames = options.pool_frames;
  tree_options.pool_shards = options.pool_shards;
  tree_options.use_header_skip = options.use_header_skip;
  tree_options.use_tag_summaries = options.use_tag_summaries;
  tree_options.checksum_pages = checksummed;
  tree_options.read_only = options.read_only;
  NOK_ASSIGN_OR_RETURN(store->tree_, StringStore::Open(std::move(tree_file),
                                                       tree_options));

  NOK_ASSIGN_OR_RETURN(auto values_file,
                       store->OpenComponent(kValuesFile, false));
  ValueStore::Options value_options;
  value_options.checksum_records = checksummed;
  NOK_ASSIGN_OR_RETURN(store->values_, ValueStore::Open(
                                           std::move(values_file),
                                           value_options));

  BTree::Options idx_options;
  idx_options.page_size = options.index_page_size;
  idx_options.pool_frames = options.index_pool_frames;
  idx_options.pool_shards = options.index_pool_shards;
  idx_options.checksum_pages = checksummed;
  idx_options.read_only = options.read_only;
  // A zero-length index file here means the index was lost (e.g. a crash
  // truncated it); formatting a fresh empty index would silently answer
  // queries with no results.
  idx_options.error_if_empty = true;
  NOK_ASSIGN_OR_RETURN(auto tag_idx_file,
                       store->OpenComponent(kTagIdxFile, false));
  NOK_ASSIGN_OR_RETURN(store->tag_index_,
                       BTree::Open(std::move(tag_idx_file), idx_options));
  NOK_ASSIGN_OR_RETURN(auto val_idx_file,
                       store->OpenComponent(kValIdxFile, false));
  NOK_ASSIGN_OR_RETURN(store->value_index_,
                       BTree::Open(std::move(val_idx_file), idx_options));
  NOK_ASSIGN_OR_RETURN(auto id_idx_file,
                       store->OpenComponent(kIdIdxFile, false));
  NOK_ASSIGN_OR_RETURN(store->id_index_,
                       BTree::Open(std::move(id_idx_file), idx_options));
  // The path index is derived (RefreshPositions rebuilds it), so losing
  // it is recoverable; open it permissively.
  BTree::Options path_idx_options = idx_options;
  path_idx_options.error_if_empty = false;
  NOK_ASSIGN_OR_RETURN(auto path_idx_file,
                       store->OpenComponent(kPathIdxFile, false));
  NOK_ASSIGN_OR_RETURN(
      store->path_index_,
      BTree::Open(std::move(path_idx_file), path_idx_options));

  std::string dict_data;
  NOK_RETURN_IF_ERROR(
      ReadFileToString(options.dir + "/" + kDictFile, &dict_data));
  uint64_t dict_epoch = 0;
  NOK_ASSIGN_OR_RETURN(
      store->tags_,
      TagDictionary::Deserialize(Slice(dict_data), &dict_epoch));

  // Cross-check component generations.  Flush stamps every component with
  // the same epoch and writes the tree meta last, so a mismatch means a
  // torn multi-file commit: refusing to open beats silently mixing
  // generations.  All-zero means a legacy store that predates epochs.
  // The path index is excluded — it is derived and rebuilt on refresh.
  {
    const uint64_t tree_epoch = store->tree_->epoch();
    const uint64_t epochs[] = {tree_epoch,
                               store->tag_index_->epoch(),
                               store->value_index_->epoch(),
                               store->id_index_->epoch(),
                               dict_epoch};
    bool all_zero = true, all_match = true;
    for (uint64_t e : epochs) {
      if (e != 0) all_zero = false;
      if (e != tree_epoch) all_match = false;
    }
    if (!all_zero && !all_match) {
      std::string listing;
      for (uint64_t e : epochs) {
        if (!listing.empty()) listing += ", ";
        listing += std::to_string(e);
      }
      return Status::Corruption(
          "store components are from different generations (epochs " +
          listing +
          " for tree, tag index, value index, id index, dictionary); a "
          "multi-file commit was torn by a crash");
    }
    store->epoch_ = tree_epoch;
  }

  store->stats_.node_count = store->tree_->node_count();
  store->stats_.max_depth = store->tree_->max_level();
  store->stats_.distinct_tags = store->tags_.size();
  store->positions_fresh_ = !FileExists(options.dir + "/" + kStaleFile);
  store->RefreshSizeStats();
  if (options.nav_mode == NavMode::kBp) {
    // Eager so that concurrent readers of a read-only handle never race
    // an on-demand build; loads the sidecar when its epoch matches.
    NOK_RETURN_IF_ERROR(store->EnsureBpIndex());
    if (!store->bp_from_sidecar_) {
      // Missing/stale/damaged sidecar was rebuilt from the page chain;
      // re-persist for the next open (no-op for read-only/WAL handles).
      NOK_RETURN_IF_ERROR(store->PersistBpSidecar());
    }
  }
  if (options.use_synopsis) {
    // Eager for the same reason as the BP index; when EnsureBpIndex just
    // rebuilt from the page chain, the synopsis rode that scan and this
    // is a no-op.  A missing/stale/damaged sidecar is silently replaced.
    NOK_RETURN_IF_ERROR(store->EnsureSynopsis());
    if (!store->synopsis_from_sidecar_) {
      NOK_RETURN_IF_ERROR(store->PersistSynopsisSidecar());
    }
  }
  return store;
}

Status DocumentStore::SaveDictionary() {
  if (options_.dir.empty()) return Status::OK();
  std::string data = tags_.Serialize(epoch_);
  if (wal_writer_ != nullptr && wal_writer_->in_transaction()) {
    // The dictionary bypasses the File interface, so it is staged as a
    // whole-file WAL record instead of captured by a TxnFile.
    wal_writer_->StageReplace(kDictFile, std::move(data));
    return Status::OK();
  }
  return WriteStringToFile(options_.dir + "/" + kDictFile, Slice(data));
}

void DocumentStore::RefreshSizeStats() {
  stats_.tree_bytes = tree_->SizeBytes();
  stats_.tag_index_bytes = tag_index_->SizeBytes();
  stats_.value_index_bytes = value_index_->SizeBytes();
  stats_.id_index_bytes = id_index_->SizeBytes();
  stats_.path_index_bytes = path_index_->SizeBytes();
  stats_.data_bytes = values_->SizeBytes();
}

Status DocumentStore::BeginWalTxn() {
  if (wal_writer_ == nullptr) return Status::OK();
  if (wal_poisoned_) {
    return Status::InvalidArgument(
        "store handle was poisoned by a failed update; reopen to recover");
  }
  wal_writer_->Begin();
  return Status::OK();
}

Status DocumentStore::FinishWalOp(Status op_status,
                                  uint64_t ticks_before) {
  if (wal_writer_ == nullptr) return op_status;
  if (!op_status.ok()) {
    if (wal_writer_->capture_ticks() != ticks_before) {
      // The failed op captured partial writes; discard the whole open
      // transaction (disk keeps the last committed state) and refuse
      // further mutation through this handle — its in-memory component
      // state has diverged from what will be on disk.
      NOK_IGNORE_STATUS(wal_writer_->Abort(),
                        "aborting an in-memory transaction cannot fail");
      wal_poisoned_ = true;
    }
    return op_status;
  }
  ++wal_ops_pending_;
  if (options_.wal.group_commit_ops != 0 &&
      wal_ops_pending_ >= options_.wal.group_commit_ops) {
    return Flush();
  }
  return Status::OK();
}

Status DocumentStore::Flush() {
  if (options_.read_only) {
    return Status::InvalidArgument("Flush on a store opened read-only");
  }
  if (wal_writer_ != nullptr) {
    if (wal_poisoned_) {
      return Status::InvalidArgument(
          "store handle was poisoned by a failed update; reopen to "
          "recover");
    }
    // Nothing captured, nothing to commit: keep the epoch stable so
    // snapshot readers and the plan cache see no phantom generation.
    if (!wal_writer_->in_transaction()) return Status::OK();
    if (options_.wal.refresh_positions_on_commit && !positions_fresh_) {
      // Fold the position refresh into this commit: the rebuilt index
      // pages and the staleness-flag removal join the open transaction
      // and ride the same single WAL fsync, instead of each commit
      // leaving stale positions behind for a separate refresh
      // transaction later (ROADMAP item 1 follow-up).
      NOK_RETURN_IF_ERROR(RefreshPositionsImpl());
    }
    // Run the legacy flush sequence against the TxnFile wrappers: every
    // page and meta write lands in the overlay (component Syncs are
    // deferred), then Commit makes the batch durable with one WAL fsync
    // before any base file is touched.
    ++epoch_;
    NOK_RETURN_IF_ERROR(values_->Sync());
    for (BTree* index :
         {tag_index_.get(), value_index_.get(), id_index_.get(),
          path_index_.get()}) {
      index->set_epoch(epoch_);
      NOK_RETURN_IF_ERROR(index->Flush());
    }
    NOK_RETURN_IF_ERROR(SaveDictionary());
    tree_->set_epoch(epoch_);
    NOK_RETURN_IF_ERROR(tree_->Flush());
    Status commit = wal_writer_->Commit(epoch_);
    if (!commit.ok()) {
      wal_poisoned_ = true;
      return commit;
    }
    wal_ops_pending_ = 0;
    if (options_.use_synopsis) {
      // The structural updates of this batch dropped the in-memory
      // synopsis; rebuild it against the committed generation so the
      // planner keeps its cardinality estimates.  In-memory only — the
      // sidecar write is not transaction-captured (PersistSynopsisSidecar
      // no-ops on WAL handles).
      NOK_RETURN_IF_ERROR(EnsureSynopsis());
      synopsis_->set_epoch(epoch_);
    }
    return Status::OK();
  }
  // One new generation.  Order: value file and indexes (data synced before
  // each component's own meta), then the dictionary, then the tree string
  // whose meta page — written last — commits the generation.
  ++epoch_;
  NOK_RETURN_IF_ERROR(values_->Sync());
  for (BTree* index :
       {tag_index_.get(), value_index_.get(), id_index_.get(),
        path_index_.get()}) {
    index->set_epoch(epoch_);
    NOK_RETURN_IF_ERROR(index->Flush());
  }
  NOK_RETURN_IF_ERROR(SaveDictionary());
  tree_->set_epoch(epoch_);
  NOK_RETURN_IF_ERROR(tree_->Flush());
  if (options_.nav_mode == NavMode::kBp) {
    // Keep the sidecar in lockstep with the generation it describes: a
    // structural update dropped the in-memory index, so rebuild from the
    // just-flushed pages, stamp the new epoch, persist.
    NOK_RETURN_IF_ERROR(EnsureBpIndex());
    bp_index_->set_epoch(epoch_);
    NOK_RETURN_IF_ERROR(PersistBpSidecar());
  }
  if (options_.use_synopsis) {
    // Same lockstep for the synopsis sidecar.
    NOK_RETURN_IF_ERROR(EnsureSynopsis());
    synopsis_->set_epoch(epoch_);
    NOK_RETURN_IF_ERROR(PersistSynopsisSidecar());
  }
  return Status::OK();
}

Status DocumentStore::DropCaches() {
  NOK_RETURN_IF_ERROR(tree_->buffer_pool()->DropAll());
  tree_->buffer_pool()->ResetStats();
  tree_->ResetNavStats();
  NOK_RETURN_IF_ERROR(tag_index_->buffer_pool()->DropAll());
  tag_index_->buffer_pool()->ResetStats();
  NOK_RETURN_IF_ERROR(value_index_->buffer_pool()->DropAll());
  value_index_->buffer_pool()->ResetStats();
  NOK_RETURN_IF_ERROR(id_index_->buffer_pool()->DropAll());
  id_index_->buffer_pool()->ResetStats();
  NOK_RETURN_IF_ERROR(path_index_->buffer_pool()->DropAll());
  path_index_->buffer_pool()->ResetStats();
  return Status::OK();
}

Result<StorePos> DocumentStore::Locate(const DeweyId& id) {
  const auto& components = id.components();
  if (components.empty() || components[0] != 0) {
    return Status::InvalidArgument("bad Dewey ID " + id.ToString());
  }
  if (positions_fresh_) {
    auto payload = id_index_->Get(Slice(id.Encode()));
    if (!payload.ok()) {
      if (payload.status().IsNotFound()) {
        return Status::NotFound("no node with Dewey ID " + id.ToString());
      }
      return payload.status();
    }
    uint64_t global = 0, offset = 0;
    bool has_value = false;
    NOK_RETURN_IF_ERROR(index_keys::ParseIdPayload(
        Slice(payload.ValueOrDie()), &global, &has_value, &offset));
    return tree_->PosForGlobal(global);
  }
  return Navigate(id);
}

Result<StorePos> DocumentStore::Navigate(const DeweyId& id) {
  const auto& components = id.components();
  if (components.empty() || components[0] != 0) {
    return Status::InvalidArgument("bad Dewey ID " + id.ToString());
  }
  StorePos pos = tree_->RootPos();
  for (size_t depth = 1; depth < components.size(); ++depth) {
    NOK_ASSIGN_OR_RETURN(auto child, tree_->FirstChild(pos));
    if (!child.has_value()) {
      return Status::NotFound("no node with Dewey ID " + id.ToString());
    }
    pos = *child;
    for (uint32_t i = 0; i < components[depth]; ++i) {
      NOK_ASSIGN_OR_RETURN(auto sibling, tree_->FollowingSibling(pos));
      if (!sibling.has_value()) {
        return Status::NotFound("no node with Dewey ID " + id.ToString());
      }
      pos = *sibling;
    }
  }
  return pos;
}

Result<std::optional<std::string>> DocumentStore::ValueOf(
    const DeweyId& id) {
  auto payload = id_index_->Get(Slice(id.Encode()));
  if (!payload.ok()) {
    if (payload.status().IsNotFound()) {
      return std::optional<std::string>();
    }
    return payload.status();
  }
  bool has_value = false;
  uint64_t global = 0, offset = 0;
  NOK_RETURN_IF_ERROR(index_keys::ParseIdPayload(Slice(payload.ValueOrDie()),
                                                 &global, &has_value,
                                                 &offset));
  if (!has_value) return std::optional<std::string>();
  NOK_ASSIGN_OR_RETURN(auto value, values_->Read(offset));
  return std::optional<std::string>(std::move(value));
}

Result<std::vector<DocumentStore::IndexedNode>> DocumentStore::NodesWithTag(
    TagId tag, size_t limit) {
  std::vector<IndexedNode> out;
  const std::string key = index_keys::TagKey(tag);
  BTreeIterator it = tag_index_->NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(Slice(key)));
  while (it.Valid() && it.key() == Slice(key)) {
    IndexedNode node;
    NOK_RETURN_IF_ERROR(index_keys::ParseNodeRefPayload(it.value(),
                                                        &node.pos,
                                                        &node.dewey));
    out.push_back(std::move(node));
    if (limit != 0 && out.size() >= limit) break;
    NOK_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Result<std::vector<DocumentStore::IndexedNode>>
DocumentStore::NodesWithValue(const Slice& value) {
  std::vector<IndexedNode> out;
  const std::string key = index_keys::ValueKey(value);
  BTreeIterator it = value_index_->NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(Slice(key)));
  while (it.Valid() && it.key() == Slice(key)) {
    IndexedNode node;
    NOK_RETURN_IF_ERROR(index_keys::ParseNodeRefPayload(it.value(),
                                                        &node.pos,
                                                        &node.dewey));
    // Verify against the data file to rule out hash collisions.
    NOK_ASSIGN_OR_RETURN(auto actual, ValueOf(node.dewey));
    if (actual.has_value() && Slice(*actual) == value) {
      out.push_back(std::move(node));
    }
    NOK_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Result<std::vector<DocumentStore::IndexedNode>> DocumentStore::NodesWithPath(
    const std::vector<TagId>& path, size_t limit) {
  std::vector<IndexedNode> out;
  const std::string key = index_keys::PathKey(path);
  BTreeIterator it = path_index_->NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(Slice(key)));
  while (it.Valid() && it.key() == Slice(key)) {
    IndexedNode node;
    NOK_RETURN_IF_ERROR(index_keys::ParseNodeRefPayload(it.value(),
                                                        &node.pos,
                                                        &node.dewey));
    out.push_back(std::move(node));
    if (limit != 0 && out.size() >= limit) break;
    NOK_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Result<size_t> DocumentStore::EstimatePathCount(
    const std::vector<TagId>& path, size_t cap) {
  size_t count = 0;
  const std::string key = index_keys::PathKey(path);
  BTreeIterator it = path_index_->NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(Slice(key)));
  while (it.Valid() && it.key() == Slice(key)) {
    ++count;
    if (cap != 0 && count >= cap) break;
    NOK_RETURN_IF_ERROR(it.Next());
  }
  return count;
}

Status DocumentStore::MarkPositionsStale() {
  if (options_.read_only) {
    return Status::InvalidArgument(
        "MarkPositionsStale on a store opened read-only");
  }
  positions_fresh_ = false;
  ++structure_version_;
  // The topology changed: the BP bitvector is invalid from here on.  It
  // is rebuilt lazily on the next bp_index() call (or at Flush).
  bp_index_.reset();
  bp_from_sidecar_ = false;
  // The synopsis too — an inserted subtree can create rooted paths the
  // old trie never saw, and pruning on those would wrongly prove queries
  // empty.  The planner falls back to flat tag counts until Flush
  // rebuilds it.
  synopsis_.reset();
  synopsis_from_sidecar_ = false;
  if (!options_.dir.empty()) {
    if (wal_writer_ != nullptr && wal_writer_->in_transaction()) {
      wal_writer_->StageReplace(kStaleFile, "1");
      return Status::OK();
    }
    return WriteStringToFile(options_.dir + "/" + kStaleFile, Slice("1"));
  }
  return Status::OK();
}

Result<const BpIndex*> DocumentStore::bp_index() {
  NOK_RETURN_IF_ERROR(EnsureBpIndex());
  return bp_index_.get();
}

Status DocumentStore::EnsureBpIndex() {
  if (bp_index_ != nullptr && bp_version_ == structure_version_) {
    return Status::OK();
  }
  bp_index_.reset();
  bp_from_sidecar_ = false;
  // Prefer the persisted sidecar.  It only counts as current before any
  // in-process structural update (structure_version_ is in-memory and
  // resets on open) and when its stamped epoch matches the generation
  // the components were opened at.
  if (!options_.dir.empty() && structure_version_ == 0 &&
      FileExists(options_.dir + "/" + kBpFile)) {
    auto file = OpenComponent(kBpFile, /*create=*/false);
    if (file.ok()) {
      auto loaded = BpIndex::LoadFrom(file.ValueOrDie().get());
      if (loaded.ok() && loaded.ValueOrDie()->epoch() == epoch_ &&
          loaded.ValueOrDie()->node_count() == tree_->node_count()) {
        bp_index_ = std::move(loaded).ValueOrDie();
        bp_version_ = structure_version_;
        bp_from_sidecar_ = true;
        return Status::OK();
      }
      // Stale or damaged sidecar (the CRC rejects torn writes): fall
      // through to a rebuild; `nokq verify` reports the details.
    }
  }
  // Rebuild from the page chain.  When the synopsis is also out of date
  // and its own sidecar cannot supply it, its trie rides the same
  // VisitSymbols scan via the build observer — one pass, two indexes.
  PathSynopsis::Builder synopsis_builder;
  std::function<void(bool, TagId)> observer;
  const bool feed_synopsis =
      options_.use_synopsis &&
      (synopsis_ == nullptr || synopsis_version_ != structure_version_) &&
      !TrySynopsisSidecar();
  if (feed_synopsis) {
    observer = [&synopsis_builder](bool is_open, TagId tag) {
      if (is_open) {
        synopsis_builder.Open(tag);
      } else {
        synopsis_builder.Close();
      }
    };
  }
  NOK_ASSIGN_OR_RETURN(bp_index_,
                       BpIndex::Build(tree_.get(), epoch_, observer));
  bp_version_ = structure_version_;
  if (feed_synopsis) {
    NOK_ASSIGN_OR_RETURN(synopsis_, synopsis_builder.Finish(epoch_));
    synopsis_version_ = structure_version_;
    synopsis_from_sidecar_ = false;
  }
  return Status::OK();
}

bool DocumentStore::TrySynopsisSidecar() {
  if (options_.dir.empty() || structure_version_ != 0 ||
      !FileExists(options_.dir + "/" + kSynopsisFile)) {
    return false;
  }
  auto file = OpenComponent(kSynopsisFile, /*create=*/false);
  if (!file.ok()) return false;
  auto loaded = PathSynopsis::LoadFrom(file.ValueOrDie().get());
  if (loaded.ok() && loaded.ValueOrDie()->epoch() == epoch_ &&
      loaded.ValueOrDie()->node_count() == tree_->node_count()) {
    synopsis_ = std::move(loaded).ValueOrDie();
    synopsis_version_ = structure_version_;
    synopsis_from_sidecar_ = true;
    return true;
  }
  // Stale or damaged sidecar (the CRC rejects torn writes): the caller
  // rebuilds from the page chain; `nokq verify` pass 6 reports details.
  return false;
}

Status DocumentStore::EnsureSynopsis() {
  if (!options_.use_synopsis) return Status::OK();
  if (synopsis_ != nullptr && synopsis_version_ == structure_version_) {
    return Status::OK();
  }
  synopsis_.reset();
  synopsis_from_sidecar_ = false;
  if (TrySynopsisSidecar()) return Status::OK();
  NOK_ASSIGN_OR_RETURN(synopsis_, PathSynopsis::Build(tree_.get(), epoch_));
  synopsis_version_ = structure_version_;
  return Status::OK();
}

Status DocumentStore::PersistSynopsisSidecar() {
  if (options_.dir.empty() || options_.read_only ||
      wal_writer_ != nullptr || synopsis_ == nullptr) {
    // WAL handles keep the synopsis in-memory only: the sidecar write is
    // not transaction-captured, so it must not join a WAL commit.
    return Status::OK();
  }
  NOK_ASSIGN_OR_RETURN(auto file,
                       OpenComponent(kSynopsisFile, /*create=*/true));
  return synopsis_->SaveTo(file.get());
}

Status DocumentStore::PersistBpSidecar() {
  if (options_.dir.empty() || options_.read_only ||
      wal_writer_ != nullptr || bp_index_ == nullptr) {
    // WAL handles keep the BP tier in-memory only: the sidecar write is
    // not transaction-captured, so it must not join a WAL commit.
    return Status::OK();
  }
  NOK_ASSIGN_OR_RETURN(auto file, OpenComponent(kBpFile, /*create=*/true));
  return bp_index_->SaveTo(file.get());
}

Result<size_t> DocumentStore::EstimateValueCount(const Slice& value,
                                                 size_t cap) {
  size_t count = 0;
  const std::string key = index_keys::ValueKey(value);
  BTreeIterator it = value_index_->NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(Slice(key)));
  while (it.Valid() && it.key() == Slice(key)) {
    ++count;
    if (cap != 0 && count >= cap) break;
    NOK_RETURN_IF_ERROR(it.Next());
  }
  return count;
}

}  // namespace nok
