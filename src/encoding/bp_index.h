// In-memory balanced-parentheses structural index — the third navigation
// tier beside the paged cursor and the tag-summary fused scan (ROADMAP
// item 4; Arroyuelo et al., "Fast In-Memory XPath Search over Compressed
// Text and Tree Indexes").
//
// The document topology is re-encoded as a balanced-parentheses bitvector:
// one open bit (1) and one close bit (0) per node, in document order —
// 2 bits per node, versus the paged string's 3 bytes.  On top of the raw
// bits sit o(n) support structures, all rebuilt in O(n) at load time:
//
//   word_excess_  excess (opens minus closes) at the start of every
//                 64-bit word; doubles as rank support, since
//                 rank1(64w) = (word_excess_[w] + 64w) / 2;
//   tree_min_     a perfect binary segment tree over the per-word minimum
//                 excess, driving findclose (forward search for
//                 excess(i) - 1) and enclose (backward search for
//                 excess(i) - 2) in O(log(n/64)) word probes;
//   select_sample_  the bit position of every 64th open, making select1
//                 a sample lookup plus a short popcount walk;
//   tags_         the TagId of every node in preorder, scanned four
//                 lanes at a time (SWAR) by NextOpenWithTag so 64-node
//                 blocks without the tag are skipped in 16 word compares
//                 — no BufferPool traffic at all.
//
// FIRST-CHILD and FOLLOWING-SIBLING are O(1)-ish (a findclose), and —
// unlike the paged cursor — PARENT is cheap too (an enclose).
//
// Thread safety: a BpIndex is immutable after construction; every method
// is const and touches no shared mutable state, so any number of threads
// may navigate one instance concurrently.  Versioning against the store
// is the owner's job: DocumentStore keys the in-memory instance to
// structure_version() and the persisted sidecar to epoch() (see
// DESIGN.md section 14).
//
// Sidecar format (*.bpx), all integers little-endian fixed-width:
//
//   +0   magic "NOKBPIDX"           (8 bytes)
//   +8   format version, currently 1 (4 bytes)
//   +12  epoch the index was built against (8 bytes)
//   +20  node count n                (8 bytes)
//   +28  CRC-32C of bytes [12, 28) + the payload (4 bytes), so a flipped
//        epoch or node-count byte is detected, not just payload damage
//   +32  payload: ceil(2n/64) bit words (8 bytes each, LSB-first bits),
//        then n TagIds (2 bytes each, preorder)

#ifndef NOKXML_ENCODING_BP_INDEX_H_
#define NOKXML_ENCODING_BP_INDEX_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "encoding/tag_dictionary.h"
#include "storage/file.h"

namespace nok {

class StringStore;

/// Immutable balanced-parentheses index over one document's topology.
class BpIndex {
 public:
  /// Returned by FindClose on a position that is not an open bit (callers
  /// that respect the contract never see it).
  static constexpr uint64_t kNpos = ~uint64_t{0};

  /// Builds the index in one sequential scan of the paged string
  /// (chain-order page decodes; the only time the BufferPool is touched).
  /// `epoch` stamps the result for sidecar versioning.  `observer`, when
  /// non-null, sees every (is_open, tag) symbol of the same scan —
  /// DocumentStore rides it to rebuild the path synopsis without a
  /// second pass over the page chain.
  static Result<std::unique_ptr<BpIndex>> Build(
      StringStore* tree, uint64_t epoch,
      const std::function<void(bool, TagId)>& observer = nullptr);

  /// Builds from a parenthesis string like "(()())" — unit tests and
  /// golden fixtures.  `tags` gives the preorder TagIds and may be empty
  /// (all nodes get kInvalidTag + 1 = 1).
  static Result<std::unique_ptr<BpIndex>> FromParens(std::string_view parens,
                                                     std::vector<TagId> tags,
                                                     uint64_t epoch);

  /// Serializes to the checksummed sidecar byte format described above.
  std::string Serialize() const;

  /// Parses and validates a serialized sidecar (magic, version, shape,
  /// CRC-32C) and rebuilds the in-memory support structures.
  static Result<std::unique_ptr<BpIndex>> Deserialize(std::string_view bytes);

  /// Writes the serialized form at offset 0 of `file`, truncating any
  /// previous content, and syncs.
  Status SaveTo(File* file) const;

  /// Reads and Deserializes a whole sidecar file.
  static Result<std::unique_ptr<BpIndex>> LoadFrom(File* file);

  // -------------------------------------------------------------------
  // Shape.

  uint64_t node_count() const { return node_count_; }
  uint64_t bit_count() const { return n_bits_; }
  /// Store epoch the index was built against.
  uint64_t epoch() const { return epoch_; }
  /// Re-stamps the epoch (DocumentStore::Flush: the topology is
  /// unchanged, the generation advanced; navigation state is untouched).
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  /// In-memory footprint of bits + tags + support structures.
  uint64_t MemoryBytes() const;

  // -------------------------------------------------------------------
  // Succinct primitives.  Positions are bit indexes in [0, bit_count());
  // node positions are open bits.  The root open is position 0.

  /// True if the bit at pos is an open parenthesis.
  bool IsOpen(uint64_t pos) const {
    return (bits_[pos >> 6] >> (pos & 63)) & 1u;
  }

  /// Number of open bits strictly before pos (pos may equal bit_count()).
  /// For an open position this is the node's 0-based preorder rank.
  uint64_t Rank1(uint64_t pos) const;

  /// Position of the rank-th open bit (0-based; rank < node_count()).
  uint64_t Select1(uint64_t rank) const;

  /// Excess (opens minus closes) after processing bits [0, pos].  For an
  /// open position this is the node's depth (root = 1).
  int64_t Excess(uint64_t pos) const {
    return 2 * static_cast<int64_t>(Rank1(pos + 1)) -
           static_cast<int64_t>(pos) - 1;
  }

  /// Matching close bit of the open at pos (kNpos if pos is not open).
  uint64_t FindClose(uint64_t pos) const;

  /// Open bit of the tightest enclosing node (parent), or nullopt for a
  /// depth-1 node.
  std::optional<uint64_t> Enclose(uint64_t pos) const;

  /// TagId of the node whose open bit is at pos.
  TagId TagAt(uint64_t pos) const { return tags_[Rank1(pos)]; }

  /// TagId of the node with the given preorder rank.
  TagId TagAtRank(uint64_t rank) const { return tags_[rank]; }

  // -------------------------------------------------------------------
  // Tree steps (the TreeCursor vocabulary).

  int Depth(uint64_t pos) const { return static_cast<int>(Excess(pos)); }

  std::optional<uint64_t> FirstChild(uint64_t pos) const {
    const uint64_t next = pos + 1;
    if (next < n_bits_ && IsOpen(next)) return next;
    return std::nullopt;
  }

  std::optional<uint64_t> FollowingSibling(uint64_t pos) const {
    const uint64_t after = FindClose(pos) + 1;
    if (after < n_bits_ && IsOpen(after)) return after;
    return std::nullopt;
  }

  std::optional<uint64_t> Parent(uint64_t pos) const { return Enclose(pos); }

  /// Next open bit strictly after pos (any tag / level), or nullopt.
  std::optional<uint64_t> NextOpen(uint64_t pos) const {
    const uint64_t rank = Rank1(pos + 1);
    if (rank >= node_count_) return std::nullopt;
    return Select1(rank);
  }

  /// Fused NextOpen + tag filter: the next open strictly after pos whose
  /// tag equals `tag`.  Scans the preorder tag array four lanes per word;
  /// aligned 64-node blocks with no matching lane are dismissed in 16
  /// word compares and counted into *blocks_skipped (when non-null).
  std::optional<uint64_t> NextOpenWithTag(uint64_t pos, TagId tag,
                                          uint64_t* blocks_skipped) const;

 private:
  BpIndex() = default;

  /// Validates balance and rebuilds word_excess_ / tree_min_ /
  /// select_sample_ from bits_.
  Status BuildSupport();

  /// Bits actually present in word w (the last word may be partial).
  uint32_t WordBits(uint64_t w) const {
    const uint64_t start = w << 6;
    return static_cast<uint32_t>(n_bits_ - start < 64 ? n_bits_ - start : 64);
  }

  /// Leftmost word strictly after `from_word` whose min excess is <=
  /// target, or kNoWord.
  size_t FwdMinSearch(size_t from_word, int64_t target) const;

  /// Rightmost word strictly before `from_word` whose min excess is <=
  /// target, or kNoWord.
  size_t BwdMinSearch(size_t from_word, int64_t target) const;

  /// True if any of tags_[rank, rank+64) equals tag (SWAR, 16 compares).
  bool BlockHasTag(uint64_t rank, TagId tag) const;

  static constexpr size_t kNoWord = ~size_t{0};
  /// Sentinel for segment-tree leaves past the last word; excess is
  /// non-negative, so any real minimum is below this.
  static constexpr int64_t kMinSentinel =
      std::numeric_limits<int64_t>::max() / 2;

  std::vector<uint64_t> bits_;        ///< LSB-first parenthesis bits.
  std::vector<TagId> tags_;           ///< Preorder TagIds, size node_count_.
  uint64_t n_bits_ = 0;               ///< 2 * node_count_.
  uint64_t node_count_ = 0;
  uint64_t epoch_ = 0;

  std::vector<int64_t> word_excess_;  ///< Excess at the start of each word.
  std::vector<int64_t> tree_min_;     ///< Segment tree over word minima.
  size_t tree_leaves_ = 1;            ///< Leaf count (power of two).
  std::vector<uint64_t> select_sample_;  ///< Position of every 64th open.
};

}  // namespace nok

#endif  // NOKXML_ENCODING_BP_INDEX_H_
