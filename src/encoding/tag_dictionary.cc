#include "encoding/tag_dictionary.h"

#include <cstring>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace nok {

namespace {
// Header: magic (8 bytes) | crc32c(payload) (4) | epoch (8) | payload.
// The payload is the legacy headerless serialization, so old files (which
// cannot start with the magic — the leading byte is a varint count) still
// deserialize.
constexpr char kDictMagic[8] = {'N', 'O', 'K', 'D', 'I', 'C', 'T', '2'};
constexpr size_t kDictHeaderSize = 8 + 4 + 8;
}  // namespace

Result<TagId> TagDictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  if (names_.size() >= kMaxTagId) {
    return Status::OutOfRange("tag alphabet exhausted (32767 names)");
  }
  names_.emplace_back(name);
  counts_.push_back(0);
  TagId id = static_cast<TagId>(names_.size());
  ids_.emplace(std::string(name), id);
  return id;
}

std::optional<TagId> TagDictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& TagDictionary::Name(TagId id) const {
  NOK_CHECK(id != kInvalidTag && id <= names_.size());
  return names_[id - 1];
}

void TagDictionary::AddOccurrence(TagId id, uint64_t n) {
  NOK_CHECK(id != kInvalidTag && id <= counts_.size());
  counts_[id - 1] += n;
  total_ += n;
}

void TagDictionary::SubOccurrence(TagId id, uint64_t n) {
  NOK_CHECK(id != kInvalidTag && id <= counts_.size());
  NOK_CHECK(counts_[id - 1] >= n && total_ >= n);
  counts_[id - 1] -= n;
  total_ -= n;
}

uint64_t TagDictionary::OccurrenceCount(TagId id) const {
  if (id == kInvalidTag || id > counts_.size()) return 0;
  return counts_[id - 1];
}

std::string TagDictionary::Serialize(uint64_t epoch) const {
  std::string payload;
  PutVarint32(&payload, static_cast<uint32_t>(names_.size()));
  for (size_t i = 0; i < names_.size(); ++i) {
    PutLengthPrefixedSlice(&payload, Slice(names_[i]));
    PutVarint64(&payload, counts_[i]);
  }
  // The CRC covers everything after itself (epoch + payload), so no byte
  // of the record can rot undetected.
  std::string covered;
  PutFixed64(&covered, epoch);
  covered.append(payload);
  std::string out;
  out.append(kDictMagic, sizeof(kDictMagic));
  PutFixed32(&out, Crc32c(Slice(covered)));
  out.append(covered);
  return out;
}

Result<TagDictionary> TagDictionary::Deserialize(const Slice& data,
                                                 uint64_t* epoch) {
  if (epoch != nullptr) *epoch = 0;
  Slice input = data;
  if (input.size() >= kDictHeaderSize &&
      memcmp(input.data(), kDictMagic, sizeof(kDictMagic)) == 0) {
    const uint32_t stored = DecodeFixed32(input.data() + 8);
    const uint64_t stored_epoch = DecodeFixed64(input.data() + 12);
    const uint32_t actual =
        Crc32c(Slice(input.data() + 12, input.size() - 12));
    input = Slice(input.data() + kDictHeaderSize,
                  input.size() - kDictHeaderSize);
    if (stored != actual) {
      return Status::Corruption(
          "tag dictionary checksum mismatch: stored " +
          std::to_string(stored) + ", computed " + std::to_string(actual));
    }
    if (epoch != nullptr) *epoch = stored_epoch;
  }
  TagDictionary dict;
  uint32_t n = 0;
  if (!GetVarint32(&input, &n)) {
    return Status::Corruption("tag dictionary: bad count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    Slice name;
    uint64_t count = 0;
    if (!GetLengthPrefixedSlice(&input, &name) ||
        !GetVarint64(&input, &count)) {
      return Status::Corruption("tag dictionary: truncated entry");
    }
    NOK_ASSIGN_OR_RETURN(TagId id, dict.Intern(name.ToStringView()));
    dict.AddOccurrence(id, count);
  }
  return dict;
}

}  // namespace nok
