#include "encoding/tag_dictionary.h"

#include "common/coding.h"
#include "common/logging.h"

namespace nok {

Result<TagId> TagDictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  if (names_.size() >= kMaxTagId) {
    return Status::OutOfRange("tag alphabet exhausted (32767 names)");
  }
  names_.emplace_back(name);
  counts_.push_back(0);
  TagId id = static_cast<TagId>(names_.size());
  ids_.emplace(std::string(name), id);
  return id;
}

std::optional<TagId> TagDictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& TagDictionary::Name(TagId id) const {
  NOK_CHECK(id != kInvalidTag && id <= names_.size());
  return names_[id - 1];
}

void TagDictionary::AddOccurrence(TagId id, uint64_t n) {
  NOK_CHECK(id != kInvalidTag && id <= counts_.size());
  counts_[id - 1] += n;
  total_ += n;
}

void TagDictionary::SubOccurrence(TagId id, uint64_t n) {
  NOK_CHECK(id != kInvalidTag && id <= counts_.size());
  NOK_CHECK(counts_[id - 1] >= n && total_ >= n);
  counts_[id - 1] -= n;
  total_ -= n;
}

uint64_t TagDictionary::OccurrenceCount(TagId id) const {
  if (id == kInvalidTag || id > counts_.size()) return 0;
  return counts_[id - 1];
}

std::string TagDictionary::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(names_.size()));
  for (size_t i = 0; i < names_.size(); ++i) {
    PutLengthPrefixedSlice(&out, Slice(names_[i]));
    PutVarint64(&out, counts_[i]);
  }
  return out;
}

Result<TagDictionary> TagDictionary::Deserialize(const Slice& data) {
  TagDictionary dict;
  Slice input = data;
  uint32_t n = 0;
  if (!GetVarint32(&input, &n)) {
    return Status::Corruption("tag dictionary: bad count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    Slice name;
    uint64_t count = 0;
    if (!GetLengthPrefixedSlice(&input, &name) ||
        !GetVarint64(&input, &count)) {
      return Status::Corruption("tag dictionary: truncated entry");
    }
    NOK_ASSIGN_OR_RETURN(TagId id, dict.Intern(name.ToStringView()));
    dict.AddOccurrence(id, count);
  }
  return dict;
}

}  // namespace nok
