#include "encoding/bp_index.h"

#include <bit>
#include <cstring>
#include <string>
#include <utility>

#include "common/coding.h"
#include "common/hash.h"
#include "common/slice.h"
#include "encoding/string_store.h"

namespace nok {
namespace {

constexpr uint64_t kBpMagic = 0x4e4f4b4250494458ull;  // "NOKBPIDX"
constexpr uint32_t kBpFormatVersion = 1;
constexpr size_t kBpHeaderSize = 32;

// SWAR lane constants for 4x16-bit equality probing (the classic
// zero-halfword detector: (x - kLaneLow) & ~x & kLaneHigh).
constexpr uint64_t kLaneLow = 0x0001000100010001ull;
constexpr uint64_t kLaneHigh = 0x8000800080008000ull;

}  // namespace

Result<std::unique_ptr<BpIndex>> BpIndex::Build(
    StringStore* tree, uint64_t epoch,
    const std::function<void(bool, TagId)>& observer) {
  auto index = std::unique_ptr<BpIndex>(new BpIndex());
  index->epoch_ = epoch;
  index->node_count_ = tree->node_count();
  index->n_bits_ = 2 * index->node_count_;
  index->bits_.assign(static_cast<size_t>((index->n_bits_ + 63) / 64), 0);
  index->tags_.reserve(static_cast<size_t>(index->node_count_));
  uint64_t pos = 0;
  NOK_RETURN_IF_ERROR(tree->VisitSymbols([&](bool is_open, TagId tag) {
    if (is_open) {
      if (pos < index->n_bits_) {
        index->bits_[pos >> 6] |= uint64_t{1} << (pos & 63);
      }
      index->tags_.push_back(tag);
    }
    if (observer) observer(is_open, tag);
    ++pos;
  }));
  if (pos != index->n_bits_ || index->tags_.size() != index->node_count_) {
    return Status::Corruption(
        "bp index: page chain disagrees with the meta node count (" +
        std::to_string(index->tags_.size()) + " opens, " +
        std::to_string(pos) + " symbols, expected " +
        std::to_string(index->node_count_) + " nodes)");
  }
  NOK_RETURN_IF_ERROR(index->BuildSupport());
  return index;
}

Result<std::unique_ptr<BpIndex>> BpIndex::FromParens(std::string_view parens,
                                                     std::vector<TagId> tags,
                                                     uint64_t epoch) {
  auto index = std::unique_ptr<BpIndex>(new BpIndex());
  index->epoch_ = epoch;
  index->n_bits_ = parens.size();
  if (index->n_bits_ % 2 != 0) {
    return Status::InvalidArgument("bp index: odd parenthesis count");
  }
  index->node_count_ = index->n_bits_ / 2;
  index->bits_.assign(static_cast<size_t>((index->n_bits_ + 63) / 64), 0);
  for (uint64_t i = 0; i < index->n_bits_; ++i) {
    const char c = parens[static_cast<size_t>(i)];
    if (c == '(') {
      index->bits_[i >> 6] |= uint64_t{1} << (i & 63);
    } else if (c != ')') {
      return Status::InvalidArgument("bp index: expected '(' or ')'");
    }
  }
  if (tags.empty()) {
    tags.assign(static_cast<size_t>(index->node_count_), TagId{1});
  }
  if (tags.size() != index->node_count_) {
    return Status::InvalidArgument("bp index: tag count != node count");
  }
  index->tags_ = std::move(tags);
  NOK_RETURN_IF_ERROR(index->BuildSupport());
  return index;
}

Status BpIndex::BuildSupport() {
  const size_t nwords = bits_.size();
  // Any garbage bit past bit_count() would poison the popcount-based
  // rank/select answers.
  if (n_bits_ % 64 != 0 && nwords > 0 &&
      (bits_.back() & (~uint64_t{0} << (n_bits_ % 64))) != 0) {
    return Status::Corruption("bp index: nonzero bits past the bit count");
  }
  word_excess_.assign(nwords + 1, 0);
  tree_leaves_ = 1;
  while (tree_leaves_ < (nwords == 0 ? size_t{1} : nwords)) tree_leaves_ <<= 1;
  tree_min_.assign(2 * tree_leaves_, kMinSentinel);
  select_sample_.clear();
  select_sample_.reserve(static_cast<size_t>(node_count_ / 64) + 1);
  int64_t e = 0;
  uint64_t ones = 0;
  for (size_t w = 0; w < nwords; ++w) {
    word_excess_[w] = e;
    int64_t wmin = kMinSentinel;
    const uint64_t word = bits_[w];
    const uint32_t nb = WordBits(w);
    for (uint32_t i = 0; i < nb; ++i) {
      if ((word >> i) & 1u) {
        if (ones % 64 == 0) select_sample_.push_back((w << 6) + i);
        ++ones;
        ++e;
      } else {
        --e;
      }
      if (e < 0) {
        return Status::Corruption("bp index: unbalanced parentheses");
      }
      if (e < wmin) wmin = e;
    }
    tree_min_[tree_leaves_ + w] = wmin;
  }
  word_excess_[nwords] = e;
  if (e != 0) {
    return Status::Corruption("bp index: unbalanced parentheses");
  }
  if (ones != node_count_) {
    return Status::Corruption("bp index: open count != node count");
  }
  for (size_t i = tree_leaves_ - 1; i >= 1; --i) {
    const int64_t left = tree_min_[2 * i];
    const int64_t right = tree_min_[2 * i + 1];
    tree_min_[i] = left < right ? left : right;
  }
  return Status::OK();
}

uint64_t BpIndex::Rank1(uint64_t pos) const {
  const uint64_t w = pos >> 6;
  uint64_t rank = static_cast<uint64_t>(
      (word_excess_[static_cast<size_t>(w)] + static_cast<int64_t>(w << 6)) /
      2);
  const uint32_t r = static_cast<uint32_t>(pos & 63);
  if (r != 0) {
    rank += static_cast<uint64_t>(std::popcount(
        bits_[static_cast<size_t>(w)] & (~uint64_t{0} >> (64 - r))));
  }
  return rank;
}

uint64_t BpIndex::Select1(uint64_t rank) const {
  const uint64_t p = select_sample_[static_cast<size_t>(rank >> 6)];
  uint64_t need = rank & 63;  // Opens to skip strictly after p.
  if (need == 0) return p;
  size_t w = static_cast<size_t>(p >> 6);
  const uint32_t sh = static_cast<uint32_t>(p & 63) + 1;
  uint64_t word = sh == 64 ? 0 : (bits_[w] & (~uint64_t{0} << sh));
  for (;;) {
    const uint64_t c = static_cast<uint64_t>(std::popcount(word));
    if (c >= need) break;
    need -= c;
    ++w;
    word = bits_[w];
  }
  for (uint64_t i = 1; i < need; ++i) word &= word - 1;
  return (static_cast<uint64_t>(w) << 6) +
         static_cast<uint64_t>(std::countr_zero(word));
}

uint64_t BpIndex::FindClose(uint64_t pos) const {
  if (!IsOpen(pos)) return kNpos;
  int64_t e = Excess(pos);
  const int64_t target = e - 1;
  const size_t w = static_cast<size_t>(pos >> 6);
  {
    const uint64_t word = bits_[w];
    const uint32_t nb = WordBits(w);
    for (uint32_t i = static_cast<uint32_t>(pos & 63) + 1; i < nb; ++i) {
      e += ((word >> i) & 1u) ? 1 : -1;
      if (e == target) return (static_cast<uint64_t>(w) << 6) + i;
    }
  }
  const size_t fw = FwdMinSearch(w, target);
  if (fw == kNoWord) return kNpos;  // Unreachable on validated bits.
  int64_t e2 = word_excess_[fw];
  const uint64_t word = bits_[fw];
  const uint32_t nb = WordBits(fw);
  for (uint32_t i = 0; i < nb; ++i) {
    e2 += ((word >> i) & 1u) ? 1 : -1;
    if (e2 == target) return (static_cast<uint64_t>(fw) << 6) + i;
  }
  return kNpos;  // Unreachable: fw's min excess covers the target.
}

std::optional<uint64_t> BpIndex::Enclose(uint64_t pos) const {
  if (!IsOpen(pos)) return std::nullopt;
  const int64_t depth = Excess(pos);
  if (depth <= 1) return std::nullopt;
  const int64_t target = depth - 2;
  const size_t w = static_cast<size_t>(pos >> 6);
  {
    // Walk the start word backwards: E(j) = E(j+1) - step(j+1).
    int64_t e = depth;
    uint64_t jp1 = pos;
    const uint64_t wstart = static_cast<uint64_t>(w) << 6;
    const uint64_t word = bits_[w];
    while (jp1 > wstart) {
      e -= ((word >> (jp1 & 63)) & 1u) ? 1 : -1;
      --jp1;
      if (e == target) return jp1 + 1;
    }
  }
  const size_t bw = w == 0 ? kNoWord : BwdMinSearch(w, target);
  if (bw == kNoWord) {
    // Only the virtual position -1 (excess 0) matches: the parent is the
    // root open at position 0.
    if (target == 0) return uint64_t{0};
    return std::nullopt;  // Unreachable on validated bits.
  }
  int64_t e2 = word_excess_[bw];
  int64_t best = -1;
  const uint64_t word = bits_[bw];
  const uint32_t nb = WordBits(bw);
  for (uint32_t i = 0; i < nb; ++i) {
    e2 += ((word >> i) & 1u) ? 1 : -1;
    if (e2 == target) best = static_cast<int64_t>((static_cast<uint64_t>(bw) << 6) + i);
  }
  if (best < 0) return std::nullopt;  // Unreachable: bw's min covers target.
  return static_cast<uint64_t>(best) + 1;
}

std::optional<uint64_t> BpIndex::NextOpenWithTag(
    uint64_t pos, TagId tag, uint64_t* blocks_skipped) const {
  uint64_t r = Rank1(pos + 1);  // Preorder rank of the next open, if any.
  while (r < node_count_) {
    if ((r & 63) == 0 && r + 64 <= node_count_ && !BlockHasTag(r, tag)) {
      r += 64;
      if (blocks_skipped != nullptr) ++*blocks_skipped;
      continue;
    }
    uint64_t stop = (r | 63) + 1;
    if (stop > node_count_) stop = node_count_;
    for (; r < stop; ++r) {
      if (tags_[static_cast<size_t>(r)] == tag) return Select1(r);
    }
  }
  return std::nullopt;
}

size_t BpIndex::FwdMinSearch(size_t from_word, int64_t target) const {
  size_t node = tree_leaves_ + from_word;
  for (;;) {
    while ((node & 1u) != 0) {
      if (node == 1) return kNoWord;
      node >>= 1;
    }
    ++node;  // Right sibling: covers words strictly after the current span.
    if (tree_min_[node] <= target) break;
  }
  while (node < tree_leaves_) {
    node <<= 1;
    if (tree_min_[node] > target) ++node;
  }
  return node - tree_leaves_;
}

size_t BpIndex::BwdMinSearch(size_t from_word, int64_t target) const {
  size_t node = tree_leaves_ + from_word;
  for (;;) {
    while (node > 1 && (node & 1u) == 0) node >>= 1;
    if (node <= 1) return kNoWord;
    --node;  // Left sibling: covers words strictly before the current span.
    if (tree_min_[node] <= target) break;
  }
  while (node < tree_leaves_) {
    node = 2 * node + 1;
    if (tree_min_[node] > target) --node;
  }
  return node - tree_leaves_;
}

bool BpIndex::BlockHasTag(uint64_t rank, TagId tag) const {
  const uint64_t pattern = kLaneLow * static_cast<uint64_t>(tag);
  const TagId* base = tags_.data() + rank;
  for (int k = 0; k < 16; ++k) {
    uint64_t chunk;
    std::memcpy(&chunk, base + 4 * k, sizeof(chunk));
    const uint64_t x = chunk ^ pattern;
    if (((x - kLaneLow) & ~x & kLaneHigh) != 0) return true;
  }
  return false;
}

std::string BpIndex::Serialize() const {
  std::string payload;
  payload.reserve(bits_.size() * 8 + tags_.size() * 2);
  for (const uint64_t word : bits_) PutFixed64(&payload, word);
  for (const TagId tag : tags_) PutFixed16(&payload, tag);
  // The CRC covers the epoch and node-count header fields too: a flipped
  // epoch byte would otherwise deserialize cleanly and masquerade as a
  // (stale or, worse, current) generation stamp.
  std::string stamped;
  PutFixed64(&stamped, epoch_);
  PutFixed64(&stamped, node_count_);
  uint32_t crc = Crc32c(Slice(stamped));
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  std::string out;
  out.reserve(kBpHeaderSize + payload.size());
  PutFixed64(&out, kBpMagic);
  PutFixed32(&out, kBpFormatVersion);
  out += stamped;
  PutFixed32(&out, crc);
  out += payload;
  return out;
}

Result<std::unique_ptr<BpIndex>> BpIndex::Deserialize(std::string_view bytes) {
  if (bytes.size() < kBpHeaderSize) {
    return Status::Corruption("bp sidecar: truncated header");
  }
  const char* p = bytes.data();
  if (DecodeFixed64(p) != kBpMagic) {
    return Status::Corruption("bp sidecar: bad magic");
  }
  const uint32_t version = DecodeFixed32(p + 8);
  if (version != kBpFormatVersion) {
    return Status::Corruption("bp sidecar: unsupported format version " +
                              std::to_string(version));
  }
  auto index = std::unique_ptr<BpIndex>(new BpIndex());
  index->epoch_ = DecodeFixed64(p + 12);
  index->node_count_ = DecodeFixed64(p + 20);
  const uint32_t crc = DecodeFixed32(p + 28);
  index->n_bits_ = 2 * index->node_count_;
  const size_t nwords = static_cast<size_t>((index->n_bits_ + 63) / 64);
  const size_t payload_size =
      nwords * 8 + static_cast<size_t>(index->node_count_) * 2;
  if (bytes.size() != kBpHeaderSize + payload_size) {
    return Status::Corruption("bp sidecar: payload size mismatch");
  }
  const char* payload = p + kBpHeaderSize;
  uint32_t want_crc = Crc32c(Slice(p + 12, 16));  // epoch + node count.
  want_crc = Crc32cExtend(want_crc, payload, payload_size);
  if (want_crc != crc) {
    return Status::Corruption("bp sidecar: payload checksum mismatch");
  }
  index->bits_.resize(nwords);
  for (size_t i = 0; i < nwords; ++i) {
    index->bits_[i] = DecodeFixed64(payload + 8 * i);
  }
  index->tags_.resize(static_cast<size_t>(index->node_count_));
  const char* tag_bytes = payload + nwords * 8;
  for (size_t i = 0; i < index->tags_.size(); ++i) {
    index->tags_[i] = DecodeFixed16(tag_bytes + 2 * i);
  }
  NOK_RETURN_IF_ERROR(index->BuildSupport());
  return index;
}

Status BpIndex::SaveTo(File* file) const {
  const std::string bytes = Serialize();
  NOK_RETURN_IF_ERROR(file->Truncate(0));
  NOK_RETURN_IF_ERROR(file->WriteAt(0, Slice(bytes)));
  return file->Sync();
}

Result<std::unique_ptr<BpIndex>> BpIndex::LoadFrom(File* file) {
  const uint64_t size = file->Size();
  std::string bytes(static_cast<size_t>(size), '\0');
  Slice out;
  NOK_RETURN_IF_ERROR(
      file->ReadAt(0, static_cast<size_t>(size), bytes.data(), &out));
  return Deserialize(out.ToStringView());
}

uint64_t BpIndex::MemoryBytes() const {
  return bits_.size() * sizeof(uint64_t) + tags_.size() * sizeof(TagId) +
         word_excess_.size() * sizeof(int64_t) +
         tree_min_.size() * sizeof(int64_t) +
         select_sample_.size() * sizeof(uint64_t);
}

}  // namespace nok
